package sim

import (
	"math/rand/v2"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/churn"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// testNetwork builds a 1/10-scale network once; the observation model is
// scale-invariant, so shape assertions transfer to full scale.
func testNetwork(t testing.TB, days int) *Network {
	t.Helper()
	n, err := New(Config{Seed: 42, Days: days, TargetDailyPeers: 3050})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Days: 0, TargetDailyPeers: 100}); err == nil {
		t.Fatal("zero days accepted")
	}
	if _, err := New(Config{Days: 5, TargetDailyPeers: 0}); err == nil {
		t.Fatal("zero target accepted")
	}
	bad := churn.DefaultConfig()
	bad.StableFrac = 2
	if _, err := New(Config{Days: 5, TargetDailyPeers: 100, Churn: &bad}); err == nil {
		t.Fatal("bad churn config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(Config{Seed: 7, Days: 5, TargetDailyPeers: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Seed: 7, Days: 5, TargetDailyPeers: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Peers) != len(b.Peers) {
		t.Fatalf("peer counts differ: %d vs %d", len(a.Peers), len(b.Peers))
	}
	for i := range a.Peers {
		if a.Peers[i].ID != b.Peers[i].ID || a.Peers[i].Country != b.Peers[i].Country {
			t.Fatalf("peer %d differs between identical seeds", i)
		}
	}
	oa := a.NewObserver(ObserverConfig{Seed: 1, SharedKBps: 1024})
	ob := b.NewObserver(ObserverConfig{Seed: 1, SharedKBps: 1024})
	la, lb := oa.ObserveDay(2), ob.ObserveDay(2)
	if len(la) != len(lb) {
		t.Fatalf("observation lengths differ: %d vs %d", len(la), len(lb))
	}
	// ObserveDay must also be idempotent.
	lc := oa.ObserveDay(2)
	if len(lc) != len(la) {
		t.Fatal("ObserveDay not idempotent")
	}
}

func TestDailyPopulationStable(t *testing.T) {
	n := testNetwork(t, 30)
	target := float64(n.Config().TargetDailyPeers)
	for day := 0; day < 30; day++ {
		active := float64(len(n.ActivePeers(day)))
		if active < target*0.8 || active > target*1.2 {
			t.Fatalf("day %d active = %.0f, want within 20%% of %.0f", day, active, target)
		}
	}
}

func TestStatusMix(t *testing.T) {
	n := testNetwork(t, 10)
	day := 5
	counts := make(map[Status]int)
	for _, idx := range n.ActivePeers(day) {
		counts[n.Peers[idx].Status]++
	}
	total := len(n.ActivePeers(day))
	// Figure 6 calibration: ~49% known-IP, ~51% unknown-IP of which
	// firewalled dominates.
	known := float64(counts[StatusKnownIP]) / float64(total)
	if known < 0.40 || known > 0.60 {
		t.Fatalf("known-IP share = %.2f, want ~0.49", known)
	}
	if counts[StatusFirewalled] <= counts[StatusHidden] {
		t.Fatal("firewalled peers must outnumber hidden-only peers")
	}
	if counts[StatusToggling] == 0 {
		t.Fatal("no toggling (overlap) peers")
	}
}

func TestClassDistribution(t *testing.T) {
	n := testNetwork(t, 10)
	counts := make(map[netdb.BandwidthClass]int)
	for _, idx := range n.ActivePeers(5) {
		counts[n.Peers[idx].Class]++
	}
	// Figure 9 ordering: L > N > P > X > O > M ~ K.
	if !(counts[netdb.ClassL] > counts[netdb.ClassN]) {
		t.Fatalf("L (%d) must dominate N (%d)", counts[netdb.ClassL], counts[netdb.ClassN])
	}
	if !(counts[netdb.ClassN] > counts[netdb.ClassP]) {
		t.Fatal("N must outnumber P")
	}
	if !(counts[netdb.ClassP] > counts[netdb.ClassO]) {
		t.Fatal("P must outnumber O (Figure 9)")
	}
	if !(counts[netdb.ClassX] > counts[netdb.ClassO]) {
		t.Fatal("X must outnumber O (Figure 9)")
	}
}

func TestFloodfillShare(t *testing.T) {
	n := testNetwork(t, 10)
	day := 5
	ff, total := 0, 0
	ffByClass := make(map[netdb.BandwidthClass]int)
	for _, idx := range n.ActivePeers(day) {
		p := n.Peers[idx]
		total++
		if p.Floodfill {
			ff++
			ffByClass[p.Class]++
		}
	}
	share := float64(ff) / float64(total)
	// Paper: 8.8% of observed peers carry the f flag.
	if share < 0.05 || share > 0.13 {
		t.Fatalf("floodfill share = %.3f, want ~0.088", share)
	}
	// Table 1: N dominates the floodfill group, ahead of L.
	if ffByClass[netdb.ClassN] <= ffByClass[netdb.ClassL] {
		t.Fatalf("floodfill N (%d) must dominate L (%d)", ffByClass[netdb.ClassN], ffByClass[netdb.ClassL])
	}
}

func TestRouterInfoMaterialization(t *testing.T) {
	n := testNetwork(t, 10)
	rng := rand.New(rand.NewPCG(1, 2))
	day := 3
	var sawKnown, sawFirewalled, sawHidden, sawToggling bool
	for _, idx := range n.ActivePeers(day) {
		p := n.Peers[idx]
		ri := n.RouterInfoFor(p, day, rng)
		if ri.Identity != p.ID {
			t.Fatal("identity mismatch")
		}
		// Round-trip through the wire codec: everything the simulator
		// emits must parse.
		data, err := ri.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if _, err := netdb.DecodeRouterInfo(data); err != nil {
			t.Fatalf("decode: %v", err)
		}
		switch p.Status {
		case StatusKnownIP:
			sawKnown = true
			if !ri.HasKnownIP() {
				t.Fatal("known-IP peer published no address")
			}
			if ri.Firewalled() || (ri.HiddenPeer() && !ri.Caps.Hidden) {
				t.Fatal("known-IP peer misclassified")
			}
		case StatusFirewalled:
			sawFirewalled = true
			if ri.HasKnownIP() {
				t.Fatal("firewalled peer published an address")
			}
			if !ri.Firewalled() {
				t.Fatal("firewalled peer has no introducers")
			}
		case StatusHidden:
			sawHidden = true
			if !ri.HiddenPeer() || ri.Firewalled() {
				t.Fatal("hidden peer misclassified")
			}
		case StatusToggling:
			sawToggling = true
			if !ri.Firewalled() || !ri.HiddenPeer() {
				t.Fatal("toggling peer must classify as both firewalled and hidden")
			}
		}
	}
	if !sawKnown || !sawFirewalled || !sawHidden || !sawToggling {
		t.Fatal("not all statuses present in active set")
	}
}

func TestIPv6LowerThanIPv4(t *testing.T) {
	n := testNetwork(t, 10)
	v4, v6 := 0, 0
	for _, idx := range n.ActivePeers(5) {
		p := n.Peers[idx]
		a4, a6 := p.AddrOnDay(5)
		if a4.IsValid() {
			v4++
		}
		if a6.IsValid() {
			v6++
		}
	}
	if v6 == 0 {
		t.Fatal("no IPv6 peers at all")
	}
	if v6 >= v4/2 {
		t.Fatalf("IPv6 (%d) should sit well below IPv4 (%d) (Figure 5)", v6, v4)
	}
}

// TestFigure2SingleRouterCoverage: a single high-end (8 MB/s) router
// observes roughly half the daily network, with non-floodfill mode
// slightly ahead of floodfill mode.
func TestFigure2SingleRouterCoverage(t *testing.T) {
	n := testNetwork(t, 10)
	nonFF := n.NewObserver(ObserverConfig{Seed: 1, SharedKBps: 8192, Floodfill: false})
	ff := n.NewObserver(ObserverConfig{Seed: 2, SharedKBps: 8192, Floodfill: true})
	var nfSum, ffSum, activeSum int
	for day := 2; day < 8; day++ {
		nfSum += len(nonFF.ObserveDay(day))
		ffSum += len(ff.ObserveDay(day))
		activeSum += len(n.ActivePeers(day))
	}
	nfFrac := float64(nfSum) / float64(activeSum)
	ffFrac := float64(ffSum) / float64(activeSum)
	// Paper: 15–16K of ~30.5K daily, i.e. ~50%.
	if nfFrac < 0.42 || nfFrac > 0.60 {
		t.Fatalf("non-floodfill coverage = %.3f, want ~0.51", nfFrac)
	}
	if ffFrac < 0.40 || ffFrac > 0.58 {
		t.Fatalf("floodfill coverage = %.3f, want ~0.48", ffFrac)
	}
	if nfFrac <= ffFrac {
		t.Fatalf("non-floodfill (%.3f) must edge out floodfill (%.3f) at 8 MB/s (Figure 2)", nfFrac, ffFrac)
	}
}

// TestFigure3BandwidthCrossover: floodfill observers win below ~2 MB/s,
// non-floodfill observers win above, and a mixed pair's union is roughly
// flat across bandwidths.
func TestFigure3BandwidthCrossover(t *testing.T) {
	n := testNetwork(t, 10)
	day := 5
	// Sum over several days to suppress sampling noise: the paper's
	// effect sizes are 1–2K on 15K (~10%).
	cover := func(ff bool, kbps int, seed uint64) int {
		o := n.NewObserver(ObserverConfig{Seed: seed, SharedKBps: kbps, Floodfill: ff})
		total := 0
		for d := 2; d < 9; d++ {
			total += len(o.ObserveDay(d))
		}
		return total
	}
	// Low bandwidth: floodfill advantage (paper: 1.5–2K more at <2MB/s).
	ffLow := cover(true, 128, 1)
	nfLow := cover(false, 128, 2)
	if ffLow <= nfLow {
		t.Fatalf("at 128 KB/s floodfill (%d) must observe more than non-floodfill (%d)", ffLow, nfLow)
	}
	// High bandwidth: non-floodfill advantage.
	ffHigh := cover(true, 5120, 3)
	nfHigh := cover(false, 5120, 4)
	if nfHigh <= ffHigh {
		t.Fatalf("at 5 MB/s non-floodfill (%d) must observe more than floodfill (%d)", nfHigh, ffHigh)
	}
	// Union flatness: pairs at each bandwidth within a narrow band.
	var unions []int
	for i, kbps := range []int{128, 1024, 5120} {
		ff := n.NewObserver(ObserverConfig{Seed: uint64(10 + i), SharedKBps: kbps, Floodfill: true})
		nf := n.NewObserver(ObserverConfig{Seed: uint64(20 + i), SharedKBps: kbps, Floodfill: false})
		unions = append(unions, len(UnionObserveDay([]*Observer{ff, nf}, day)))
	}
	lo, hi := unions[0], unions[0]
	for _, u := range unions {
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if float64(hi-lo) > 0.18*float64(hi) {
		t.Fatalf("pair unions vary too much across bandwidths: %v", unions)
	}
	// And the union must exceed either individual router's single-day view.
	ffLowDay := n.NewObserver(ObserverConfig{Seed: 30, SharedKBps: 128, Floodfill: true})
	if unions[0] <= len(ffLowDay.ObserveDay(day)) {
		t.Fatal("union not larger than its floodfill member")
	}
}

// TestFigure4RouterScaling: the union over k routers grows
// logarithmically; 20 routers reach >=94% of what 40 reach.
func TestFigure4RouterScaling(t *testing.T) {
	n := testNetwork(t, 10)
	day := 5
	observers := make([]*Observer, 40)
	for i := range observers {
		observers[i] = n.NewObserver(ObserverConfig{
			Seed:       uint64(100 + i),
			SharedKBps: 8192,
			Floodfill:  i%2 == 0,
		})
	}
	seen := make(map[int]bool)
	cum := make([]int, len(observers)+1)
	for k, o := range observers {
		for _, idx := range o.ObserveDay(day) {
			seen[idx] = true
		}
		cum[k+1] = len(seen)
	}
	total40 := cum[40]
	if total40 == 0 {
		t.Fatal("no observations")
	}
	at20 := float64(cum[20]) / float64(total40)
	if at20 < 0.94 {
		t.Fatalf("20 routers reach %.3f of the 40-router view, want >= 0.94 (paper: 95.5%%)", at20)
	}
	at1 := float64(cum[1]) / float64(total40)
	if at1 < 0.40 || at1 > 0.65 {
		t.Fatalf("single router share = %.3f, want ~0.5", at1)
	}
	// Diminishing returns: the second half of routers adds less than 10%.
	gainSecondHalf := float64(cum[40]-cum[20]) / float64(total40)
	if gainSecondHalf > 0.10 {
		t.Fatalf("routers 21–40 added %.3f, want < 0.10", gainSecondHalf)
	}
	// Monotone non-decreasing.
	for k := 1; k <= 40; k++ {
		if cum[k] < cum[k-1] {
			t.Fatal("cumulative union decreased")
		}
	}
	// The 40-router union over one day should cover most of the active
	// set but not quite all of it.
	active := len(n.ActivePeers(day))
	frac := float64(total40) / float64(active)
	if frac < 0.90 || frac > 1.0 {
		t.Fatalf("40-router coverage = %.3f of actives", frac)
	}
}

func TestCollectDayMaterializesObservations(t *testing.T) {
	n := testNetwork(t, 10)
	o := n.NewObserver(ObserverConfig{Seed: 9, SharedKBps: 2048, Floodfill: true})
	day := 4
	idxs := o.ObserveDay(day)
	ris := o.CollectDay(day)
	if len(ris) != len(idxs) {
		t.Fatalf("CollectDay returned %d records for %d observations", len(ris), len(idxs))
	}
	for i, ri := range ris {
		if ri.Identity != n.Peers[idxs[i]].ID {
			t.Fatal("record order mismatch")
		}
	}
}

func TestIPChurnStatistics(t *testing.T) {
	n := testNetwork(t, 90)
	single, multi, over100, total := 0, 0, 0, 0
	singleAS, over10AS := 0, 0
	maxAS := 0
	for _, p := range n.Peers {
		if p.Status != StatusKnownIP || len(p.ipSchedule) == 0 {
			continue
		}
		total++
		ips := p.UniqueIPs()
		if ips == 1 {
			single++
		} else {
			multi++
		}
		if ips > 100 {
			over100++
		}
		asns := p.UniqueASNs()
		if asns == 1 {
			singleAS++
		}
		if asns > 10 {
			over10AS++
		}
		if asns > maxAS {
			maxAS = asns
		}
	}
	if total == 0 {
		t.Fatal("no known-IP peers")
	}
	singleFrac := float64(single) / float64(total)
	// Figure 8: ~45% single-IP. Short-lived dynamic peers inflate this,
	// so allow a wide band.
	if singleFrac < 0.35 || singleFrac > 0.60 {
		t.Fatalf("single-IP share = %.3f, want ~0.45", singleFrac)
	}
	if multi == 0 {
		t.Fatal("no multi-IP peers")
	}
	over100Frac := float64(over100) / float64(total)
	if over100Frac < 0.001 || over100Frac > 0.02 {
		t.Fatalf(">100-IP share = %.4f, want ~0.0065", over100Frac)
	}
	singleASFrac := float64(singleAS) / float64(total)
	if singleASFrac < 0.75 {
		t.Fatalf("single-AS share = %.3f, want > 0.80 (Figure 12)", singleASFrac)
	}
	over10Frac := float64(over10AS) / float64(total)
	if over10Frac < 0.02 || over10Frac > 0.13 {
		t.Fatalf(">10-AS share = %.3f, want ~0.084", over10Frac)
	}
	if maxAS > 39 {
		t.Fatalf("max AS count = %d, paper max is 39", maxAS)
	}
}

func TestAddrLookupsResolveViaGeoDB(t *testing.T) {
	n := testNetwork(t, 10)
	db := n.GeoDB()
	day := 5
	checked := 0
	for _, idx := range n.ActivePeers(day) {
		p := n.Peers[idx]
		if p.Status != StatusKnownIP {
			continue
		}
		v4, _ := p.AddrOnDay(day)
		if !v4.IsValid() {
			continue
		}
		rec, ok := db.Lookup(v4)
		if !ok {
			t.Fatalf("peer address %v does not resolve", v4)
		}
		if rec.ASN != p.ASNOnDay(day) {
			t.Fatalf("ASN mismatch: lookup %d, schedule %d", rec.ASN, p.ASNOnDay(day))
		}
		checked++
		if checked > 500 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestPeerAccessors(t *testing.T) {
	n := testNetwork(t, 10)
	p := n.Peers[0]
	if p.FirstActiveDay() < 0 && len(p.Presence) > 0 {
		// first active day must exist for peers with any presence
		any := false
		for _, on := range p.Presence {
			any = any || on
		}
		if any {
			t.Fatal("FirstActiveDay missing despite presence")
		}
	}
	if n.ActivePeers(-1) != nil || n.ActivePeers(1000) != nil {
		t.Fatal("out-of-range days must return nil")
	}
	if n.Introducers(-1) != nil {
		t.Fatal("out-of-range introducers must return nil")
	}
	if !n.DayTime(0).After(StudyStart) {
		t.Fatal("DayTime(0) must be within day 0")
	}
	if Status(99).String() != "invalid" {
		t.Fatal("unknown status string")
	}
}
