package tunnel

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// This file implements garlic messages (Section 2.1.1): several payloads
// ("cloves", or "bulbs" in Freedman's terminology) bundled into a single
// message, each with its own delivery instructions, plus the layered
// per-hop encryption applied when a message traverses a tunnel.

// DeliveryKind tells the endpoint what to do with a clove.
type DeliveryKind uint8

// Delivery kinds.
const (
	// DeliverLocal hands the clove to the local router.
	DeliverLocal DeliveryKind = 0
	// DeliverDestination forwards the clove to a destination hash.
	DeliverDestination DeliveryKind = 1
	// DeliverRouter forwards the clove to a router hash.
	DeliverRouter DeliveryKind = 2
)

// Clove is one bundled payload with its delivery instructions.
type Clove struct {
	Kind    DeliveryKind
	To      netdb.Hash // zero for DeliverLocal
	Payload []byte
}

// GarlicMessage bundles multiple cloves: "Unlike Tor, multiple messages can
// be bundled together in a single I2P garlic message" (Section 2.1.1).
type GarlicMessage struct {
	Cloves []Clove
}

var garlicMagic = [4]byte{'G', 'A', 'R', '1'}

// Garlic codec errors.
var (
	ErrBadGarlic = errors.New("tunnel: malformed garlic message")
)

// Encode serializes the garlic message.
func (g *GarlicMessage) Encode() ([]byte, error) {
	if len(g.Cloves) > 255 {
		return nil, fmt.Errorf("tunnel: too many cloves (%d)", len(g.Cloves))
	}
	var buf bytes.Buffer
	buf.Write(garlicMagic[:])
	buf.WriteByte(uint8(len(g.Cloves)))
	for _, c := range g.Cloves {
		buf.WriteByte(uint8(c.Kind))
		buf.Write(c.To[:])
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(c.Payload)))
		buf.Write(n[:])
		buf.Write(c.Payload)
	}
	return buf.Bytes(), nil
}

// DecodeGarlic parses a message produced by Encode.
func DecodeGarlic(data []byte) (*GarlicMessage, error) {
	if len(data) < 5 || !bytes.Equal(data[:4], garlicMagic[:]) {
		return nil, ErrBadGarlic
	}
	n := int(data[4])
	off := 5
	g := &GarlicMessage{}
	for i := 0; i < n; i++ {
		if off+1+netdb.HashSize+4 > len(data) {
			return nil, ErrBadGarlic
		}
		var c Clove
		c.Kind = DeliveryKind(data[off])
		off++
		copy(c.To[:], data[off:off+netdb.HashSize])
		off += netdb.HashSize
		plen := int(binary.BigEndian.Uint32(data[off : off+4]))
		off += 4
		if off+plen > len(data) {
			return nil, ErrBadGarlic
		}
		c.Payload = append([]byte(nil), data[off:off+plen]...)
		off += plen
		g.Cloves = append(g.Cloves, c)
	}
	if off != len(data) {
		return nil, ErrBadGarlic
	}
	return g, nil
}

// hopKey derives the symmetric layer key a hop uses. Real I2P negotiates
// these during tunnel build; deriving them from the hop identity keeps the
// simulation deterministic while still exercising real cipher code.
func hopKey(hop netdb.Hash, tunnelID uint32) ([]byte, []byte) {
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], tunnelID)
	key := sha256.Sum256(append(append([]byte("layer-key:"), hop[:]...), idBuf[:]...))
	iv := sha256.Sum256(append(append([]byte("layer-iv:"), hop[:]...), idBuf[:]...))
	return key[:], iv[:aes.BlockSize]
}

func layerBlock(hop netdb.Hash, tunnelID uint32) (cipher.Block, []byte) {
	key, iv := hopKey(hop, tunnelID)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err) // 32-byte key; cannot fail
	}
	return block, iv
}

// pkcs7Pad pads data to a multiple of the AES block size.
func pkcs7Pad(data []byte) []byte {
	pad := aes.BlockSize - len(data)%aes.BlockSize
	out := make([]byte, len(data)+pad)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(pad)
	}
	return out
}

// pkcs7Unpad reverses pkcs7Pad.
func pkcs7Unpad(data []byte) ([]byte, error) {
	if len(data) == 0 || len(data)%aes.BlockSize != 0 {
		return nil, ErrBadGarlic
	}
	pad := int(data[len(data)-1])
	if pad == 0 || pad > aes.BlockSize || pad > len(data) {
		return nil, ErrBadGarlic
	}
	for _, b := range data[len(data)-pad:] {
		if int(b) != pad {
			return nil, ErrBadGarlic
		}
	}
	return data[:len(data)-pad], nil
}

// WrapLayers applies one AES-CBC encryption layer per hop, innermost layer
// for the endpoint — the "encrypted several times by the originator using
// the selected hops' public keys" construction of Section 2.1.1. CBC is
// what the Java router uses for tunnel layers; unlike a stream cipher it is
// order-sensitive, so layers must be peeled gateway-first. The payload is
// padded once before layering.
func WrapLayers(t *Tunnel, payload []byte) []byte {
	out := pkcs7Pad(payload)
	for i := len(t.Hops) - 1; i >= 0; i-- {
		block, iv := layerBlock(t.Hops[i], t.ID)
		cipher.NewCBCEncrypter(block, iv).CryptBlocks(out, out)
	}
	return out
}

// PeelLayer removes the layer belonging to hop index i ("Each hop peels off
// one encryption layer to learn the address of the next hop"). Peeling all
// hops in order recovers the padded payload.
func PeelLayer(t *Tunnel, hopIndex int, data []byte) ([]byte, error) {
	if hopIndex < 0 || hopIndex >= len(t.Hops) {
		return nil, fmt.Errorf("tunnel: hop index %d out of range", hopIndex)
	}
	if len(data) == 0 || len(data)%aes.BlockSize != 0 {
		return nil, ErrBadGarlic
	}
	out := append([]byte(nil), data...)
	block, iv := layerBlock(t.Hops[hopIndex], t.ID)
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(out, out)
	return out, nil
}

// TraverseTunnel simulates a message passing through every hop of the
// tunnel, peeling one layer at a time, and returns the unpadded payload the
// endpoint sees.
func TraverseTunnel(t *Tunnel, wrapped []byte) ([]byte, error) {
	data := wrapped
	for i := range t.Hops {
		var err error
		data, err = PeelLayer(t, i, data)
		if err != nil {
			return nil, err
		}
	}
	return pkcs7Unpad(data)
}
