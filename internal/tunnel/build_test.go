package tunnel

import (
	"errors"
	"testing"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

func buildTestTunnel() *Tunnel {
	return &Tunnel{
		ID: 1000,
		Hops: []netdb.Hash{
			netdb.HashFromUint64(1),
			netdb.HashFromUint64(2),
			netdb.HashFromUint64(3),
		},
	}
}

func TestBuildRequestEachHopOpensOwnRecord(t *testing.T) {
	tn := buildTestTunnel()
	owner := netdb.HashFromUint64(99)
	req, err := NewBuildRequest(tn, owner)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Records) != 3 {
		t.Fatalf("records = %d", len(req.Records))
	}
	for i, hop := range tn.Hops {
		rec, err := req.OpenRecord(hop)
		if err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		if rec.Hop != hop {
			t.Fatalf("hop %d: record addressed to %s", i, rec.Hop.Short())
		}
		if rec.ReceiveTunnelID != tn.ID+uint32(i) {
			t.Fatalf("hop %d: receive ID %d", i, rec.ReceiveTunnelID)
		}
		if i+1 < len(tn.Hops) {
			if rec.NextHop != tn.Hops[i+1] {
				t.Fatalf("hop %d: wrong next hop", i)
			}
		} else if rec.NextHop != owner {
			t.Fatal("endpoint record must point at the terminal")
		}
	}
}

func TestBuildRequestStrangerCannotOpen(t *testing.T) {
	tn := buildTestTunnel()
	req, err := NewBuildRequest(tn, netdb.HashFromUint64(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := req.OpenRecord(netdb.HashFromUint64(7777)); !errors.Is(err, ErrNotYourRecord) {
		t.Fatalf("stranger opened a record: %v", err)
	}
}

// TestBuildRecordsOpaque: a hop cannot learn anything about other hops —
// their hashes never appear in records it cannot decrypt.
func TestBuildRecordsOpaque(t *testing.T) {
	tn := buildTestTunnel()
	req, err := NewBuildRequest(tn, netdb.HashFromUint64(99))
	if err != nil {
		t.Fatal(err)
	}
	// The ciphertexts must not contain any hop hash in the clear.
	for i, enc := range req.Records {
		for j, hop := range tn.Hops {
			if containsSubslice(enc, hop[:]) {
				t.Fatalf("record %d leaks hop %d hash in cleartext", i, j)
			}
		}
	}
}

func containsSubslice(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestBuildReplyAllAccept(t *testing.T) {
	tn := buildTestTunnel()
	req, err := NewBuildRequest(tn, netdb.HashFromUint64(99))
	if err != nil {
		t.Fatal(err)
	}
	reply := NewBuildReply(req)
	for i, hop := range tn.Hops {
		if err := reply.Respond(i, hop, true); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := reply.Accepted(tn.Hops)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("all-accept reply reported rejection")
	}
}

func TestBuildReplyRejection(t *testing.T) {
	tn := buildTestTunnel()
	req, err := NewBuildRequest(tn, netdb.HashFromUint64(99))
	if err != nil {
		t.Fatal(err)
	}
	reply := NewBuildReply(req)
	reply.Respond(0, tn.Hops[0], true)
	reply.Respond(1, tn.Hops[1], false) // hop 1 refuses
	reply.Respond(2, tn.Hops[2], true)
	ok, err := reply.Accepted(tn.Hops)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("rejection not detected")
	}
}

func TestBuildReplyErrors(t *testing.T) {
	tn := buildTestTunnel()
	req, err := NewBuildRequest(tn, netdb.HashFromUint64(99))
	if err != nil {
		t.Fatal(err)
	}
	reply := NewBuildReply(req)
	if err := reply.Respond(9, tn.Hops[0], true); err == nil {
		t.Fatal("out-of-range verdict accepted")
	}
	// Missing verdicts must error.
	if _, err := reply.Accepted(tn.Hops); err == nil {
		t.Fatal("incomplete reply accepted")
	}
	// Wrong hop list length.
	for i, hop := range tn.Hops {
		reply.Respond(i, hop, true)
	}
	if _, err := reply.Accepted(tn.Hops[:2]); err == nil {
		t.Fatal("hop/verdict mismatch accepted")
	}
	// A verdict decrypted with the wrong hop key is corrupted.
	wrongHops := []netdb.Hash{tn.Hops[1], tn.Hops[0], tn.Hops[2]}
	if _, err := reply.Accepted(wrongHops); err == nil {
		t.Fatal("swapped hops not detected")
	}
}

func TestNewBuildRequestEmpty(t *testing.T) {
	if _, err := NewBuildRequest(&Tunnel{ID: 1}, netdb.Hash{}); err == nil {
		t.Fatal("empty tunnel accepted")
	}
}
