package tunnel

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// This file implements the tunnel build handshake: the creator sends one
// encrypted BuildRecord per hop; each hop can open only its own record,
// learning its receive tunnel ID and the next hop — and nothing about its
// position or the other participants. That anonymity property is why the
// paper's censor must rely on *address* blocking rather than tunnel-level
// interdiction.

// BuildRecord is one hop's instructions, readable only by that hop.
type BuildRecord struct {
	// Hop identifies the intended reader.
	Hop netdb.Hash
	// ReceiveTunnelID is the ID the hop listens on for this tunnel.
	ReceiveTunnelID uint32
	// NextHop is where to forward messages (zero hash for the endpoint of
	// an outbound tunnel / the owner for an inbound one).
	NextHop netdb.Hash
	// NextTunnelID is the ID at the next hop.
	NextTunnelID uint32
}

// BuildRequest carries the encrypted records for every hop. Records are
// fixed-size and shuffled-equivalent (hop order is not derivable from
// position alone in real I2P; here order matches hops, but opacity is
// preserved by encryption).
type BuildRequest struct {
	TunnelID uint32
	Records  [][]byte
}

// recordPlainSize is the fixed plaintext size of one build record.
const recordPlainSize = netdb.HashSize*2 + 4 + 4

// Build message errors.
var (
	ErrNotYourRecord = errors.New("tunnel: no build record for this hop")
	ErrBadRecord     = errors.New("tunnel: malformed build record")
)

// recordKey derives the per-hop record encryption key. Real I2P uses the
// hop's ElGamal public key; the deterministic derivation keeps the
// simulation self-contained while preserving the "only this hop can read
// it" structure.
func recordKey(hop netdb.Hash, tunnelID uint32) ([]byte, []byte) {
	var id [4]byte
	binary.BigEndian.PutUint32(id[:], tunnelID)
	k := sha256.Sum256(append(append([]byte("build-key:"), hop[:]...), id[:]...))
	iv := sha256.Sum256(append(append([]byte("build-iv:"), hop[:]...), id[:]...))
	return k[:], iv[:aes.BlockSize]
}

func recordStream(hop netdb.Hash, tunnelID uint32) cipher.Stream {
	key, iv := recordKey(hop, tunnelID)
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err) // 32-byte key; cannot fail
	}
	return cipher.NewCTR(block, iv)
}

// checksum is the integrity tag inside each record (first 8 bytes of
// SHA-256 over the plaintext).
func recordChecksum(plain []byte) [8]byte {
	sum := sha256.Sum256(plain)
	var out [8]byte
	copy(out[:], sum[:8])
	return out
}

// NewBuildRequest assembles the encrypted per-hop records for a tunnel.
// Hop i receives: its tunnel ID (TunnelID+i), the next hop's hash, and
// the next tunnel ID; the final hop's next-hop is owner-or-zero depending
// on direction, supplied by the caller as terminal.
func NewBuildRequest(t *Tunnel, terminal netdb.Hash) (*BuildRequest, error) {
	if len(t.Hops) == 0 {
		return nil, fmt.Errorf("tunnel: cannot build an empty tunnel")
	}
	req := &BuildRequest{TunnelID: t.ID}
	for i, hop := range t.Hops {
		rec := BuildRecord{
			Hop:             hop,
			ReceiveTunnelID: t.ID + uint32(i),
		}
		if i+1 < len(t.Hops) {
			rec.NextHop = t.Hops[i+1]
			rec.NextTunnelID = t.ID + uint32(i+1)
		} else {
			rec.NextHop = terminal
			rec.NextTunnelID = t.ID + uint32(i+1)
		}
		plain := make([]byte, 0, recordPlainSize)
		plain = append(plain, rec.Hop[:]...)
		plain = append(plain, rec.NextHop[:]...)
		var ids [8]byte
		binary.BigEndian.PutUint32(ids[:4], rec.ReceiveTunnelID)
		binary.BigEndian.PutUint32(ids[4:], rec.NextTunnelID)
		plain = append(plain, ids[:]...)

		sum := recordChecksum(plain)
		payload := append(plain, sum[:]...)
		recordStream(hop, t.ID).XORKeyStream(payload, payload)
		req.Records = append(req.Records, payload)
	}
	return req, nil
}

// OpenRecord lets hop `hop` find and decrypt its record. Other hops'
// records remain opaque; a hop cannot even tell which record belongs to
// whom (decryption with the wrong key fails the checksum).
func (r *BuildRequest) OpenRecord(hop netdb.Hash) (*BuildRecord, error) {
	for _, enc := range r.Records {
		if len(enc) != recordPlainSize+8 {
			return nil, ErrBadRecord
		}
		plain := make([]byte, len(enc))
		copy(plain, enc)
		recordStream(hop, r.TunnelID).XORKeyStream(plain, plain)
		body, tag := plain[:recordPlainSize], plain[recordPlainSize:]
		sum := recordChecksum(body)
		if !bytes.Equal(sum[:], tag) {
			continue // not this hop's record
		}
		var rec BuildRecord
		copy(rec.Hop[:], body[:netdb.HashSize])
		copy(rec.NextHop[:], body[netdb.HashSize:2*netdb.HashSize])
		rec.ReceiveTunnelID = binary.BigEndian.Uint32(body[2*netdb.HashSize:])
		rec.NextTunnelID = binary.BigEndian.Uint32(body[2*netdb.HashSize+4:])
		if rec.Hop != hop {
			return nil, ErrBadRecord
		}
		return &rec, nil
	}
	return nil, ErrNotYourRecord
}

// BuildReply aggregates each hop's accept/reject decision. Hops append
// their verdict encrypted with their record key; the creator opens all.
type BuildReply struct {
	TunnelID uint32
	// verdicts[i] corresponds to Records[i] of the request.
	Verdicts [][]byte
}

// NewBuildReply initializes an empty reply for a request.
func NewBuildReply(req *BuildRequest) *BuildReply {
	return &BuildReply{TunnelID: req.TunnelID, Verdicts: make([][]byte, len(req.Records))}
}

// verdict bytes.
const (
	verdictAccept = 0x01
	verdictReject = 0xFF
)

// Respond records hop i's decision.
func (r *BuildReply) Respond(i int, hop netdb.Hash, accept bool) error {
	if i < 0 || i >= len(r.Verdicts) {
		return fmt.Errorf("tunnel: verdict index %d out of range", i)
	}
	v := []byte{verdictReject}
	if accept {
		v[0] = verdictAccept
	}
	recordStream(hop, r.TunnelID+1<<16).XORKeyStream(v, v)
	r.Verdicts[i] = v
	return nil
}

// Accepted reports whether every hop accepted. The creator knows the hop
// order, so it can decrypt each verdict.
func (r *BuildReply) Accepted(hops []netdb.Hash) (bool, error) {
	if len(hops) != len(r.Verdicts) {
		return false, fmt.Errorf("tunnel: %d hops vs %d verdicts", len(hops), len(r.Verdicts))
	}
	for i, v := range r.Verdicts {
		if len(v) != 1 {
			return false, fmt.Errorf("tunnel: hop %d did not respond", i)
		}
		plain := []byte{v[0]}
		recordStream(hops[i], r.TunnelID+1<<16).XORKeyStream(plain, plain)
		switch plain[0] {
		case verdictAccept:
		case verdictReject:
			return false, nil
		default:
			return false, fmt.Errorf("tunnel: hop %d verdict corrupted", i)
		}
	}
	return true, nil
}
