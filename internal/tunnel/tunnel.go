// Package tunnel implements I2P's unidirectional tunnels (Section 2.1.1):
// hop selection honoring capacity flags, tunnel construction through a
// connectivity oracle (where address-based blocking bites), the ten-minute
// tunnel lifetime, and garlic-message bundling with layered encryption.
//
// A single round trip between two destinations crosses four tunnels (the
// paper's Figure 1): the requester's outbound, the responder's inbound, the
// responder's outbound and the requester's inbound. The eepsite package
// builds on this to reproduce the page-load experiment of Figure 14.
package tunnel

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

// Lifetime is how long a tunnel remains valid: "New tunnels are formed
// every ten minutes" (Section 2.1.1).
const Lifetime = 10 * time.Minute

// MaxHops is the largest configurable tunnel length: "tunnels can be
// configured to comprise up to seven hops" (Section 2.1.1).
const MaxHops = 7

// DefaultHops is the common tunnel length used in the paper's figures.
const DefaultHops = 2

// Direction distinguishes inbound from outbound tunnels.
type Direction int

// Tunnel directions.
const (
	Inbound Direction = iota
	Outbound
)

func (d Direction) String() string {
	if d == Inbound {
		return "inbound"
	}
	return "outbound"
}

// Tunnel is one established unidirectional tunnel. Hops are ordered from
// gateway to endpoint.
type Tunnel struct {
	ID        uint32
	Direction Direction
	Owner     netdb.Hash
	Hops      []netdb.Hash
	Built     time.Time
	Expires   time.Time
}

// Gateway returns the entry router of the tunnel. For inbound tunnels this
// is the published contact point (what LeaseSets carry); for outbound
// tunnels it is known only to the owner (Section 2.1.1).
func (t *Tunnel) Gateway() netdb.Hash {
	if len(t.Hops) == 0 {
		return netdb.Hash{}
	}
	return t.Hops[0]
}

// Endpoint returns the exit router of the tunnel.
func (t *Tunnel) Endpoint() netdb.Hash {
	if len(t.Hops) == 0 {
		return netdb.Hash{}
	}
	return t.Hops[len(t.Hops)-1]
}

// Live reports whether the tunnel is still valid at time now.
func (t *Tunnel) Live(now time.Time) bool {
	return now.Before(t.Expires)
}

// Contains reports whether h participates in the tunnel.
func (t *Tunnel) Contains(h netdb.Hash) bool {
	for _, hop := range t.Hops {
		if hop == h {
			return true
		}
	}
	return false
}

// Selector picks tunnel hops from RouterInfo candidates using the peer
// selection criteria the paper describes: higher-bandwidth, reachable peers
// are preferred ("The higher the specifications a router has, the higher
// the probability that it will be selected to participate in more tunnels",
// Section 4.2).
type Selector struct {
	// MinClass excludes peers advertising less bandwidth. The Java router
	// excludes K and L peers from client tunnels by default.
	MinClass netdb.BandwidthClass
	// AllowUnreachable permits U-flagged peers as hops; the default (false)
	// matches the Java router, which only builds through reachable peers.
	AllowUnreachable bool
}

// DefaultSelector returns the selection policy used in the experiments.
func DefaultSelector() Selector {
	return Selector{MinClass: netdb.ClassM, AllowUnreachable: false}
}

// Eligible reports whether ri can serve as a tunnel hop under this policy.
func (s Selector) Eligible(ri *netdb.RouterInfo) bool {
	if ri == nil {
		return false
	}
	if ri.Caps.Hidden || !ri.HasKnownIP() {
		// Hidden and firewalled peers do not route for arbitrary others;
		// firewalled peers require introducers and are skipped for
		// simplicity, matching their U flag.
		return false
	}
	if !s.AllowUnreachable && !ri.Caps.Reachable {
		return false
	}
	if !ri.Caps.Class.AtLeast(s.MinClass) {
		return false
	}
	return true
}

// weight returns the selection weight for an eligible record: bandwidth
// class index squared, so O/P/X peers carry most tunnels, as the paper's
// profiling citation (zzz & Schimmer 2009) describes.
func (s Selector) weight(ri *netdb.RouterInfo) float64 {
	idx := ri.Caps.Class.Index() + 1
	return float64(idx * idx)
}

// Errors from hop selection and tunnel building.
var (
	ErrNotEnoughPeers = errors.New("tunnel: not enough eligible peers")
	ErrBuildFailed    = errors.New("tunnel: build failed")
)

// SelectHops draws n distinct hops from candidates, excluding any hash in
// exclude (typically the owner itself and hops of the paired tunnel).
// Selection is weighted random without replacement.
func (s Selector) SelectHops(candidates []*netdb.RouterInfo, n int, exclude map[netdb.Hash]bool, rng *rand.Rand) ([]netdb.Hash, error) {
	if n <= 0 || n > MaxHops {
		return nil, fmt.Errorf("tunnel: invalid hop count %d", n)
	}
	type cand struct {
		h netdb.Hash
		w float64
	}
	pool := make([]cand, 0, len(candidates))
	total := 0.0
	for _, ri := range candidates {
		if !s.Eligible(ri) || (exclude != nil && exclude[ri.Identity]) {
			continue
		}
		w := s.weight(ri)
		pool = append(pool, cand{ri.Identity, w})
		total += w
	}
	if len(pool) < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnoughPeers, n, len(pool))
	}
	hops := make([]netdb.Hash, 0, n)
	for len(hops) < n {
		x := rng.Float64() * total
		idx := -1
		for i := range pool {
			x -= pool[i].w
			if x <= 0 {
				idx = i
				break
			}
		}
		if idx < 0 {
			idx = len(pool) - 1
		}
		hops = append(hops, pool[idx].h)
		total -= pool[idx].w
		pool[idx] = pool[len(pool)-1]
		pool = pool[:len(pool)-1]
	}
	return hops, nil
}

// BuildResult reports a tunnel construction attempt.
type BuildResult struct {
	Tunnel *Tunnel
	// OK is true when every hop accepted the build request.
	OK bool
	// FailedHop is the index of the first hop that could not be contacted
	// (meaningful only when !OK).
	FailedHop int
	// Elapsed is the build latency: per-hop round trips up to and
	// including the failing hop.
	Elapsed time.Duration
}

// Builder constructs tunnels through a connectivity oracle.
type Builder struct {
	// Reachable reports whether a build message can reach hop h. nil
	// means all hops are reachable. The censorship experiments plug the
	// null-routing firewall in here.
	Reachable func(h netdb.Hash) bool
	// HopRTT models the per-hop round-trip cost during construction. nil
	// means a constant 250 ms, a mid-range figure for relayed hops.
	HopRTT func(h netdb.Hash) time.Duration
	// Timeout is charged when a hop is unreachable (the build request is
	// silently dropped by a null-routing censor and the client waits).
	// Zero means 10 seconds, the Java router's per-hop build timeout.
	Timeout time.Duration

	nextID uint32
}

func (b *Builder) timeout() time.Duration {
	if b.Timeout <= 0 {
		return 10 * time.Second
	}
	return b.Timeout
}

func (b *Builder) rtt(h netdb.Hash) time.Duration {
	if b.HopRTT != nil {
		return b.HopRTT(h)
	}
	return 250 * time.Millisecond
}

// Build attempts to construct a tunnel through hops at time now: the
// build request with its per-hop encrypted records travels hop to hop,
// each reachable hop opens its own record and accepts, and the reply
// returns to the creator.
func (b *Builder) Build(owner netdb.Hash, dir Direction, hops []netdb.Hash, now time.Time) BuildResult {
	b.nextID++
	t := &Tunnel{
		ID:        b.nextID,
		Direction: dir,
		Owner:     owner,
		Hops:      append([]netdb.Hash(nil), hops...),
		Built:     now,
		Expires:   now.Add(Lifetime),
	}
	req, err := NewBuildRequest(t, owner)
	if err != nil {
		return BuildResult{OK: false, FailedHop: 0}
	}
	reply := NewBuildReply(req)
	var elapsed time.Duration
	for i, h := range hops {
		if b.Reachable != nil && !b.Reachable(h) {
			// A null-routed hop never sees the request; the creator waits
			// out the build timeout.
			elapsed += b.timeout()
			return BuildResult{OK: false, FailedHop: i, Elapsed: elapsed}
		}
		rec, err := req.OpenRecord(h)
		if err != nil || rec.ReceiveTunnelID != t.ID+uint32(i) {
			return BuildResult{OK: false, FailedHop: i, Elapsed: elapsed}
		}
		if err := reply.Respond(i, h, true); err != nil {
			return BuildResult{OK: false, FailedHop: i, Elapsed: elapsed}
		}
		elapsed += b.rtt(h)
	}
	if ok, err := reply.Accepted(hops); err != nil || !ok {
		return BuildResult{OK: false, FailedHop: len(hops) - 1, Elapsed: elapsed}
	}
	return BuildResult{Tunnel: t, OK: true, Elapsed: elapsed}
}

// Pool owns a router's current tunnels and rebuilds them as they expire.
type Pool struct {
	Owner    netdb.Hash
	Selector Selector
	Builder  *Builder
	HopCount int

	inbound  *Tunnel
	outbound *Tunnel
}

// NewPool returns a pool with the given policy. hopCount defaults to
// DefaultHops when zero.
func NewPool(owner netdb.Hash, sel Selector, b *Builder, hopCount int) *Pool {
	if hopCount <= 0 {
		hopCount = DefaultHops
	}
	return &Pool{Owner: owner, Selector: sel, Builder: b, HopCount: hopCount}
}

// Tunnels returns the current inbound and outbound tunnels (either may be
// nil before the first successful Maintain).
func (p *Pool) Tunnels() (in, out *Tunnel) { return p.inbound, p.outbound }

// Maintain ensures live inbound and outbound tunnels exist at now, building
// replacements from candidates as needed. It returns the total build
// latency incurred and an error if construction failed.
func (p *Pool) Maintain(candidates []*netdb.RouterInfo, now time.Time, rng *rand.Rand) (time.Duration, error) {
	var total time.Duration
	exclude := map[netdb.Hash]bool{p.Owner: true}
	for _, slot := range []struct {
		dir Direction
		t   **Tunnel
	}{{Inbound, &p.inbound}, {Outbound, &p.outbound}} {
		if *slot.t != nil && (*slot.t).Live(now) {
			continue
		}
		hops, err := p.Selector.SelectHops(candidates, p.HopCount, exclude, rng)
		if err != nil {
			return total, err
		}
		res := p.Builder.Build(p.Owner, slot.dir, hops, now)
		total += res.Elapsed
		if !res.OK {
			return total, fmt.Errorf("%w: %s hop %d unreachable", ErrBuildFailed, slot.dir, res.FailedHop)
		}
		*slot.t = res.Tunnel
	}
	return total, nil
}
