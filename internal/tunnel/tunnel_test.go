package tunnel

import (
	"errors"
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(11, 7)) }

func makeRI(id uint64, rateKBps int, reachable bool) *netdb.RouterInfo {
	ri := &netdb.RouterInfo{
		Identity:  netdb.HashFromUint64(id),
		Published: time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC),
		Caps:      netdb.NewCaps(rateKBps, false, reachable),
		Version:   "0.9.34",
	}
	if reachable {
		ri.Addresses = []netdb.RouterAddress{{
			Transport: netdb.TransportNTCP,
			Addr:      netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1}),
			Port:      12345,
		}}
	}
	return ri
}

func candidateSet(n int) []*netdb.RouterInfo {
	out := make([]*netdb.RouterInfo, 0, n)
	for i := 1; i <= n; i++ {
		rate := []int{20, 100, 300, 3000}[i%4]
		out = append(out, makeRI(uint64(i), rate, true))
	}
	return out
}

func TestSelectorEligibility(t *testing.T) {
	sel := DefaultSelector()
	if sel.Eligible(nil) {
		t.Fatal("nil record eligible")
	}
	if sel.Eligible(makeRI(1, 20, true)) {
		t.Fatal("L-class peer must be excluded by default policy")
	}
	if !sel.Eligible(makeRI(2, 100, true)) {
		t.Fatal("N-class reachable peer must be eligible")
	}
	if sel.Eligible(makeRI(3, 100, false)) {
		t.Fatal("unreachable peer eligible under default policy")
	}
	hidden := makeRI(4, 100, true)
	hidden.Caps.Hidden = true
	if sel.Eligible(hidden) {
		t.Fatal("hidden peer must never route")
	}
	firewalled := makeRI(5, 100, true)
	firewalled.Addresses = []netdb.RouterAddress{{
		Transport:   netdb.TransportSSU,
		Introducers: []netdb.Introducer{{Hash: netdb.HashFromUint64(9), Addr: netip.MustParseAddr("198.51.100.1"), Port: 9000}},
	}}
	if sel.Eligible(firewalled) {
		t.Fatal("firewalled peer must not be selected as a hop")
	}

	loose := Selector{MinClass: netdb.ClassK, AllowUnreachable: true}
	if !loose.Eligible(makeRI(6, 20, true)) {
		t.Fatal("loose policy should accept L peers")
	}
}

func TestSelectHopsDistinctAndExcluded(t *testing.T) {
	sel := DefaultSelector()
	rng := testRNG()
	cands := candidateSet(40)
	exclude := map[netdb.Hash]bool{cands[1].Identity: true}
	for trial := 0; trial < 50; trial++ {
		hops, err := sel.SelectHops(cands, 3, exclude, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(hops) != 3 {
			t.Fatalf("got %d hops", len(hops))
		}
		seen := make(map[netdb.Hash]bool)
		for _, h := range hops {
			if seen[h] {
				t.Fatal("duplicate hop selected")
			}
			if exclude[h] {
				t.Fatal("excluded hop selected")
			}
			seen[h] = true
		}
	}
}

func TestSelectHopsPrefersHighBandwidth(t *testing.T) {
	sel := DefaultSelector()
	rng := testRNG()
	cands := candidateSet(40)
	classCount := make(map[netdb.BandwidthClass]int)
	for trial := 0; trial < 2000; trial++ {
		hops, err := sel.SelectHops(cands, 1, nil, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c.Identity == hops[0] {
				classCount[c.Caps.Class]++
			}
		}
	}
	if classCount[netdb.ClassX] <= classCount[netdb.ClassN] {
		t.Fatalf("X peers (%d) must be selected more than N peers (%d)",
			classCount[netdb.ClassX], classCount[netdb.ClassN])
	}
}

func TestSelectHopsErrors(t *testing.T) {
	sel := DefaultSelector()
	rng := testRNG()
	if _, err := sel.SelectHops(candidateSet(2), 5, nil, rng); !errors.Is(err, ErrNotEnoughPeers) {
		t.Fatalf("want ErrNotEnoughPeers, got %v", err)
	}
	if _, err := sel.SelectHops(candidateSet(10), 0, nil, rng); err == nil {
		t.Fatal("hop count 0 accepted")
	}
	if _, err := sel.SelectHops(candidateSet(10), MaxHops+1, nil, rng); err == nil {
		t.Fatal("hop count beyond MaxHops accepted")
	}
}

func TestBuilderSuccess(t *testing.T) {
	b := &Builder{}
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	hops := []netdb.Hash{netdb.HashFromUint64(1), netdb.HashFromUint64(2)}
	res := b.Build(netdb.HashFromUint64(99), Outbound, hops, now)
	if !res.OK {
		t.Fatal("build failed with no blocker")
	}
	tn := res.Tunnel
	if tn.Gateway() != hops[0] || tn.Endpoint() != hops[1] {
		t.Fatal("gateway/endpoint wrong")
	}
	if !tn.Live(now.Add(9 * time.Minute)) {
		t.Fatal("tunnel must live for ten minutes")
	}
	if tn.Live(now.Add(11 * time.Minute)) {
		t.Fatal("tunnel must expire after ten minutes")
	}
	if !tn.Contains(hops[0]) || tn.Contains(netdb.HashFromUint64(77)) {
		t.Fatal("Contains wrong")
	}
	if res.Elapsed != 500*time.Millisecond {
		t.Fatalf("elapsed = %v, want 500ms (2 hops x 250ms)", res.Elapsed)
	}
}

func TestBuilderBlockedHop(t *testing.T) {
	blocked := netdb.HashFromUint64(2)
	b := &Builder{
		Reachable: func(h netdb.Hash) bool { return h != blocked },
		Timeout:   3 * time.Second,
	}
	now := time.Now()
	hops := []netdb.Hash{netdb.HashFromUint64(1), blocked, netdb.HashFromUint64(3)}
	res := b.Build(netdb.HashFromUint64(99), Inbound, hops, now)
	if res.OK {
		t.Fatal("build through blocked hop succeeded")
	}
	if res.FailedHop != 1 {
		t.Fatalf("failed hop = %d, want 1", res.FailedHop)
	}
	// Elapsed: hop 0 RTT (250ms) + timeout at hop 1 (3s).
	if res.Elapsed != 250*time.Millisecond+3*time.Second {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}

func TestEmptyTunnelAccessors(t *testing.T) {
	tn := &Tunnel{}
	if !tn.Gateway().IsZero() || !tn.Endpoint().IsZero() {
		t.Fatal("empty tunnel must have zero gateway/endpoint")
	}
}

func TestPoolMaintain(t *testing.T) {
	rng := testRNG()
	owner := netdb.HashFromUint64(999)
	b := &Builder{}
	p := NewPool(owner, DefaultSelector(), b, 0)
	if p.HopCount != DefaultHops {
		t.Fatalf("default hop count = %d, want %d", p.HopCount, DefaultHops)
	}
	cands := candidateSet(30)
	now := time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)
	if _, err := p.Maintain(cands, now, rng); err != nil {
		t.Fatal(err)
	}
	in1, out1 := p.Tunnels()
	if in1 == nil || out1 == nil {
		t.Fatal("tunnels missing after Maintain")
	}
	if in1.Direction != Inbound || out1.Direction != Outbound {
		t.Fatal("directions wrong")
	}
	for _, tn := range []*Tunnel{in1, out1} {
		if tn.Contains(owner) {
			t.Fatal("owner selected as its own hop")
		}
	}
	// Maintain again within the lifetime: tunnels must be reused.
	if _, err := p.Maintain(cands, now.Add(5*time.Minute), rng); err != nil {
		t.Fatal(err)
	}
	in2, out2 := p.Tunnels()
	if in2 != in1 || out2 != out1 {
		t.Fatal("live tunnels rebuilt prematurely")
	}
	// After expiry they must be replaced.
	if _, err := p.Maintain(cands, now.Add(11*time.Minute), rng); err != nil {
		t.Fatal(err)
	}
	in3, out3 := p.Tunnels()
	if in3 == in1 || out3 == out1 {
		t.Fatal("expired tunnels not rebuilt")
	}
}

func TestPoolMaintainFailsWhenBlocked(t *testing.T) {
	rng := testRNG()
	b := &Builder{Reachable: func(netdb.Hash) bool { return false }, Timeout: time.Second}
	p := NewPool(netdb.HashFromUint64(999), DefaultSelector(), b, 2)
	_, err := p.Maintain(candidateSet(30), time.Now(), rng)
	if !errors.Is(err, ErrBuildFailed) {
		t.Fatalf("want ErrBuildFailed, got %v", err)
	}
}

func TestGarlicRoundTrip(t *testing.T) {
	g := &GarlicMessage{Cloves: []Clove{
		{Kind: DeliverLocal, Payload: []byte("status")},
		{Kind: DeliverDestination, To: netdb.HashFromUint64(5), Payload: []byte("http request")},
		{Kind: DeliverRouter, To: netdb.HashFromUint64(6), Payload: nil},
	}}
	data, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGarlic(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cloves) != 3 {
		t.Fatalf("cloves = %d", len(got.Cloves))
	}
	if string(got.Cloves[1].Payload) != "http request" || got.Cloves[1].To != netdb.HashFromUint64(5) {
		t.Fatal("clove 1 corrupted")
	}
	if got.Cloves[2].Payload != nil && len(got.Cloves[2].Payload) != 0 {
		t.Fatal("empty payload corrupted")
	}
}

func TestGarlicDecodeErrors(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("GAR"), []byte("XXX12345")} {
		if _, err := DecodeGarlic(data); err == nil {
			t.Errorf("DecodeGarlic(%q) accepted", data)
		}
	}
	g := &GarlicMessage{Cloves: []Clove{{Kind: DeliverLocal, Payload: []byte("x")}}}
	data, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGarlic(data[:len(data)-1]); err == nil {
		t.Error("truncated garlic accepted")
	}
	if _, err := DecodeGarlic(append(data, 0)); err == nil {
		t.Error("garlic with trailing bytes accepted")
	}
}

func TestLayeredEncryption(t *testing.T) {
	tn := &Tunnel{
		ID:   42,
		Hops: []netdb.Hash{netdb.HashFromUint64(1), netdb.HashFromUint64(2), netdb.HashFromUint64(3)},
	}
	payload := []byte("a garlic message in transit")
	wrapped := WrapLayers(tn, payload)
	if string(wrapped) == string(payload) {
		t.Fatal("wrapping did not change the payload")
	}
	got, err := TraverseTunnel(tn, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatal("traversal did not recover the payload")
	}
	// Intermediate hops must not see plaintext.
	after0, err := PeelLayer(tn, 0, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if string(after0) == string(payload) {
		t.Fatal("payload visible after first hop")
	}
	// Peeling out of order must not recover the payload: CBC layers do
	// not commute, so a misrouted message stays opaque.
	wrong, _ := PeelLayer(tn, 2, wrapped)
	wrong, _ = PeelLayer(tn, 1, wrong)
	wrong, _ = PeelLayer(tn, 0, wrong)
	if _, err := pkcs7Unpad(wrong); err == nil {
		t.Fatal("out-of-order peel produced well-formed padding")
	}
	if string(wrong) == string(pkcs7Pad(payload)) {
		t.Fatal("out-of-order peel recovered plaintext")
	}
	if _, err := PeelLayer(tn, 5, wrapped); err == nil {
		t.Fatal("out-of-range hop accepted")
	}
}

func TestLayerKeysDifferPerTunnel(t *testing.T) {
	hops := []netdb.Hash{netdb.HashFromUint64(1), netdb.HashFromUint64(2)}
	t1 := &Tunnel{ID: 1, Hops: hops}
	t2 := &Tunnel{ID: 2, Hops: hops}
	payload := []byte("same payload")
	w1 := WrapLayers(t1, payload)
	w2 := WrapLayers(t2, payload)
	if string(w1) == string(w2) {
		t.Fatal("different tunnels produced identical ciphertext")
	}
}

func TestDirectionString(t *testing.T) {
	if Inbound.String() != "inbound" || Outbound.String() != "outbound" {
		t.Fatal("direction strings wrong")
	}
}
