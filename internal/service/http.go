package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"runtime/debug"
	"strconv"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
)

// This file is the daemon's HTTP surface:
//
//	GET /handout?dist=<name>&id=<identity>[&attempt=N]  moat-style JSON
//	GET /i2pseeds.su3?id=<identity>                     signed seed bundle
//	GET /metrics                                        Prometheus text
//	GET /healthz                                        liveness
//
// Responses are deterministic per identity: the JSON body is a pure
// function of (identity, distributor, day, attempt, retired set), so the
// golden tests can compare bytes across daemon restarts.

// BridgeJSON is one bridge in a handout response.
type BridgeJSON struct {
	// Peer is the peer's index in the study network.
	Peer int `json:"peer"`
	// Key is the resource's ring position (decimal string — the value
	// exceeds JavaScript's safe-integer range).
	Key string `json:"key"`
	// Identity is the router's identity hash, I2P base64.
	Identity string `json:"identity"`
	// Version is the published router version.
	Version string `json:"version"`
	// Addr and Port are the first published transport address, omitted
	// for firewalled bridges (introducer-only).
	Addr string `json:"addr,omitempty"`
	Port uint16 `json:"port,omitempty"`
}

// HandoutJSON is the moat-style handout response body.
type HandoutJSON struct {
	Distributor string       `json:"distributor"`
	Day         int          `json:"day"`
	ID          string       `json:"id"`
	Granted     bool         `json:"granted"`
	Bridges     []BridgeJSON `json:"bridges"`
}

// Handler returns the daemon's route table.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/handout", s.handleHandout)
	mux.HandleFunc("/"+reseed.SeedFileName, s.handleSeeds)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// HealthJSON is the /healthz response body: liveness plus enough build
// identity to tell which binary answered.
type HealthJSON struct {
	Status        string  `json:"status"`
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
	Modified      bool    `json:"modified,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// buildIdentity reads the binary's Go version and VCS revision from the
// embedded build info; fields stay empty when the binary was built
// outside a module or checkout.
func buildIdentity() (goVersion, revision string, modified bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", "", false
	}
	goVersion = bi.GoVersion
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			revision = kv.Value
		case "vcs.modified":
			modified = kv.Value == "true"
		}
	}
	return goVersion, revision, modified
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	goVersion, revision, modified := buildIdentity()
	resp := HealthJSON{
		Status:        "ok",
		GoVersion:     goVersion,
		Revision:      revision,
		Modified:      modified,
		UptimeSeconds: s.cfg.Now().Sub(s.started).Seconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, "encode health", http.StatusInternalServerError)
	}
}

// clientAddr parses the request's client IP for the blacklist check.
func clientAddr(r *http.Request) netip.Addr {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	a, _ := netip.ParseAddr(host)
	return a
}

// admit runs the shared admission checks — blacklist then rate limit —
// and reports the request's identity key. A non-zero status means the
// response has been written.
func (s *Service) admit(w http.ResponseWriter, r *http.Request, id string) (uint64, int) {
	key := distrib.IdentityKey(id)
	if a := clientAddr(r); a.IsValid() && s.blacklist.Blocked(a) {
		http.Error(w, "address blacklisted", http.StatusForbidden)
		return key, http.StatusForbidden
	}
	if !s.limiter.Allow(key) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return key, http.StatusTooManyRequests
	}
	return key, 0
}

func (s *Service) handleHandout(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	dist := r.URL.Query().Get("dist")
	if dist == "" {
		dist = "https"
	}
	code := http.StatusOK
	defer func() {
		s.metrics.ObserveRequest(dist, code, time.Since(start).Nanoseconds())
	}()

	if r.Method != http.MethodGet {
		code = http.StatusMethodNotAllowed
		http.Error(w, "method not allowed", code)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		code = http.StatusBadRequest
		http.Error(w, "missing id", code)
		return
	}
	attempt := 0
	if v := r.URL.Query().Get("attempt"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			code = http.StatusBadRequest
			http.Error(w, "bad attempt", code)
			return
		}
		attempt = n
	}
	key, denied := s.admit(w, r, id)
	if denied != 0 {
		code = denied
		return
	}
	h, err := s.Serve(distrib.Request{Dist: dist, ID: key, Attempt: attempt})
	if err != nil {
		code = http.StatusNotFound
		http.Error(w, err.Error(), code)
		return
	}
	resp := HandoutJSON{
		Distributor: h.Distributor,
		Day:         h.Day,
		ID:          id,
		Granted:     h.Granted,
		Bridges:     make([]BridgeJSON, 0, len(h.Resources)),
	}
	for _, res := range h.Resources {
		b := BridgeJSON{
			Peer:     res.Peer,
			Key:      strconv.FormatUint(res.Key, 10),
			Identity: res.Record.Identity.String(),
			Version:  res.Record.Version,
		}
		if len(res.Record.Addresses) > 0 {
			if a := res.Record.Addresses[0]; a.Addr.IsValid() {
				b.Addr, b.Port = a.Addr.String(), a.Port
			}
		}
		resp.Bridges = append(resp.Bridges, b)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(resp); err != nil {
		code = http.StatusInternalServerError
	}
}

// handleSeeds serves the manual-reseed frontend's pre-built signed
// bundle for the requesting identity: the identity's grant resolves to a
// partition slot, and the slot indexes the atomically swapped bundle
// cache — no per-request encoding.
func (s *Service) handleSeeds(w http.ResponseWriter, r *http.Request) {
	const dist = "manual-reseed"
	start := time.Now()
	code := http.StatusOK
	defer func() {
		s.metrics.ObserveRequest(dist, code, time.Since(start).Nanoseconds())
	}()

	if r.Method != http.MethodGet {
		code = http.StatusMethodNotAllowed
		http.Error(w, "method not allowed", code)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		code = http.StatusBadRequest
		http.Error(w, "missing id", code)
		return
	}
	key, denied := s.admit(w, r, id)
	if denied != 0 {
		code = denied
		return
	}
	gkey, granted, err := s.api.Key(distrib.Request{Dist: dist, ID: key, Day: s.cfg.Day})
	if err != nil || !granted {
		code = http.StatusNotFound
		http.Error(w, "no manual-reseed frontend", code)
		return
	}
	part := s.backend.Partition(dist)
	data := s.bundles.Load().Bundle(part.SlotOf(gkey))
	if len(data) == 0 {
		code = http.StatusServiceUnavailable
		http.Error(w, "no bundle available", code)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.Render())
}
