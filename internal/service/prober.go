package service

import (
	"context"
	"fmt"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/distrib"
)

// This file is the kraken-style reachability loop: the daemon
// periodically probes every bridge in the pool, tracks per-bridge
// consecutive-failure streaks with exponential backoff between retries,
// and retires a bridge once its streak reaches FailLimit. Retirement
// filters the bridge out of responses without rebuilding the ring, so
// survivors keep their hashring assignment (the package invariant).

// ProbeFunc checks one bridge's reachability; nil error means up.
type ProbeFunc func(r distrib.Resource) error

// RunProber runs the probe loop until ctx is cancelled, probing the
// whole pool every ProbeInterval. It always returns nil on graceful
// shutdown — ctx cancellation is the stop signal, not an error.
func (s *Service) RunProber(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			s.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce sweeps the pool once: every live bridge whose backoff has
// elapsed is probed, streaks update, and bridges at FailLimit retire.
// Exported so tests (and the daemon's startup pass) can drive the loop
// deterministically without a ticker.
func (s *Service) ProbeOnce(ctx context.Context) {
	now := s.cfg.Now()
	var dead []int
	for _, name := range s.api.Distributors() {
		part := s.backend.Partition(name)
		if part == nil {
			continue
		}
		for _, r := range part.Resources() {
			if ctx.Err() != nil {
				return
			}
			if s.Retired(r.Peer) {
				continue
			}
			if due, ok := s.nextDue[r.Peer]; ok && now.Before(due) {
				continue // still backing off from the last failure
			}
			if err, panicked := s.runProbe(r); err != nil {
				// A panicking ProbeFunc is a prober bug, not a dead
				// bridge; it gets its own outcome label so dashboards
				// can tell the two apart, but still counts toward the
				// streak — a probe that cannot complete tells us nothing
				// good about the bridge.
				if panicked {
					s.metrics.ObserveProbe("panic")
				} else {
					s.metrics.ObserveProbe("fail")
				}
				s.streaks[r.Peer]++
				// Exponential backoff: 1x, 2x, 4x ... ProbeBackoff per
				// consecutive failure, so a flapping bridge is retried
				// promptly but a dying one stops burning probe budget.
				// The exponent is clamped before shifting: past 2^4 the
				// cap below wins anyway, and a long streak (> 63) would
				// otherwise overflow the shift into a zero or negative
				// backoff, turning a dying bridge into a hot probe loop.
				exp := s.streaks[r.Peer] - 1
				if exp > 4 {
					exp = 4
				}
				backoff := s.cfg.ProbeBackoff << exp
				if max := 16 * s.cfg.ProbeBackoff; backoff > max {
					backoff = max
				}
				s.nextDue[r.Peer] = now.Add(backoff)
				if s.streaks[r.Peer] >= s.cfg.FailLimit {
					dead = append(dead, r.Peer)
					s.metrics.ObserveProbe("retired")
				}
			} else {
				s.metrics.ObserveProbe("ok")
				delete(s.streaks, r.Peer)
				delete(s.nextDue, r.Peer)
			}
		}
	}
	if len(dead) > 0 {
		// rebuildBundles re-encodes from records already proven
		// encodable, so the only failure mode is a ctx-free internal
		// bug; surface it on the metrics rather than crashing the loop.
		if err := s.retire(dead); err != nil {
			s.metrics.ObserveProbe("fail")
		}
	}
}

// runProbe invokes the configured ProbeFunc with a recovery guard: a
// panic becomes an error plus a panicked flag, so one broken probe
// implementation cannot take down the whole loop and the outcome is
// counted under its own label.
func (s *Service) runProbe(r distrib.Resource) (err error, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("service: probe panicked: %v", v)
			panicked = true
		}
	}()
	return s.cfg.Probe(r), false
}
