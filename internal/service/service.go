// Package service is the resident distributor daemon behind
// cmd/i2pdistribd: the batch pipeline's distrib.Backend held live in a
// process and served over HTTP. Where distrib.Sweep asks "how fast does
// a censor enumerate this channel", the service is the channel — the
// rdsys-style backend ring, the same HandoutAPI request → handout code
// path the sweeps' determinism goldens cover, fronted by a moat-style
// JSON API, an i2pseeds.su3 endpoint reusing internal/reseed's bundle
// codec, a kraken-style reachability prober that retires dead bridges,
// token-bucket rate limiting and an AddrSet-backed operator blacklist.
//
// Two invariants carry over from the batch side and are load-bearing
// here:
//
//   - Handout determinism: a request's bridge set is a pure function of
//     (identity, distributor, day, attempt) through HandoutAPI.Serve.
//     Restarting the daemon on the same network/seed serves
//     byte-identical JSON (TestHandoutGoldenAcrossRestart).
//
//   - Stable hashring assignment: retiring a dead bridge filters it out
//     of responses but never rebuilds the ring, so surviving bridges
//     keep their frontend assignment and arc positions
//     (FuzzHashringAssignment's retirement extension).
package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// Config parameterizes the daemon.
type Config struct {
	// Day is the distribution day the backend pool is drawn on.
	Day int
	// Strategy selects the candidate pool (the zero value is
	// censor.BridgeRandom; cmd/i2pdistribd defaults its flag to the
	// paper's combined mix).
	Strategy censor.BridgeStrategy
	// MaxResources caps the pool (<= 0: 200, matching distrib.Sweep).
	MaxResources int
	// Seed drives the backend build.
	Seed uint64
	// Distributors are the frontends (nil: distrib.DefaultDistributors).
	Distributors []distrib.Distributor
	// Signer names the su3 bundle signer (default "i2pdistribd").
	Signer string

	// RatePerSec is the per-identity token-bucket refill rate
	// (<= 0: rate limiting disabled).
	RatePerSec float64
	// Burst is the per-identity bucket depth (<= 0: 2).
	Burst int

	// ProbeInterval is the reachability-probe loop period
	// (<= 0: 30s).
	ProbeInterval time.Duration
	// FailLimit is the consecutive-failure streak that retires a bridge
	// (<= 0: 3).
	FailLimit int
	// ProbeBackoff is the initial per-bridge backoff after a failed
	// probe, doubling per consecutive failure (<= 0: ProbeInterval).
	ProbeBackoff time.Duration
	// Probe overrides the reachability check (nil: the simulated default,
	// "is the peer online on Day"). The prober calls it off the request
	// path.
	Probe ProbeFunc

	// Now overrides the clock for tests (nil: time.Now).
	Now func() time.Time

	// Registry is the obs registry the instrument set lives on (nil: a
	// fresh private one). cmd/i2pdistribd passes the registry it
	// obs.Enable'd, so /metrics carries the engine counter families
	// (i2p_engine_*, i2p_cache_*) next to the handout series.
	Registry *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxResources <= 0 {
		cfg.MaxResources = 200
	}
	if cfg.Distributors == nil {
		cfg.Distributors = distrib.DefaultDistributors()
	}
	if cfg.Signer == "" {
		cfg.Signer = "i2pdistribd"
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 2
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 30 * time.Second
	}
	if cfg.FailLimit <= 0 {
		cfg.FailLimit = 3
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = cfg.ProbeInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Service is the resident distributor. Request handlers are lock-free
// against the pool state: retirements publish a fresh retired-set and
// bundle table with atomic swaps, mirroring how the immutable Backend
// is shared by sweep cells.
type Service struct {
	cfg     Config
	net     *sim.Network
	backend *distrib.Backend
	api     *distrib.HandoutAPI
	ix      *censor.AddrIndex

	metrics   *Metrics
	limiter   *Limiter
	blacklist *Blacklist

	// retired is the atomically published set of retired peer indexes
	// (nil map: nothing retired). Handlers read it lock-free; retire()
	// copies, extends and swaps under retireMu.
	retired  atomicMap
	retireMu sync.Mutex

	// bundles caches one pre-built su3 bundle per manual-reseed partition
	// slot (grants there never rotate, so a partition of n resources has
	// exactly n distinct handouts). Rebuilt and swapped on retirement.
	bundles reseed.BundleCache

	// prober state, owned by the probe loop.
	streaks map[int]int
	nextDue map[int]time.Time

	// started stamps construction time for /healthz uptime.
	started time.Time
}

// NewService draws the day's pool and builds the serving state.
func NewService(network *sim.Network, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	backend, err := distrib.NewBackend(network, distrib.BackendConfig{
		Strategy:     cfg.Strategy,
		Day:          cfg.Day,
		MaxResources: cfg.MaxResources,
		Seed:         cfg.Seed,
	}, cfg.Distributors)
	if err != nil {
		return nil, err
	}
	api, err := distrib.NewHandoutAPI(backend, cfg.Distributors)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:     cfg,
		net:     network,
		backend: backend,
		api:     api,
		ix:      censor.IndexFor(network),
		metrics: NewMetricsOn(cfg.Registry),
		limiter: NewLimiter(cfg.RatePerSec, cfg.Burst, cfg.Now),
		streaks: make(map[int]int),
		nextDue: make(map[int]time.Time),
		started: cfg.Now(),
	}
	s.blacklist = NewBlacklist(s.ix)
	if cfg.Probe == nil {
		s.cfg.Probe = s.simProbe
	}
	s.retired.store(nil)
	if err := s.rebuildBundles(); err != nil {
		return nil, err
	}
	s.refreshPoolGauges()
	return s, nil
}

// Backend returns the immutable backend ring.
func (s *Service) Backend() *distrib.Backend { return s.backend }

// HandoutAPI returns the shared handout code path.
func (s *Service) HandoutAPI() *distrib.HandoutAPI { return s.api }

// Metrics returns the instrument set.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Blacklist returns the operator blacklist.
func (s *Service) Blacklist() *Blacklist { return s.blacklist }

// Retired reports whether a peer's bridge has been retired.
func (s *Service) Retired(peer int) bool { return s.retired.load()[peer] }

// RetiredCount returns how many bridges have been retired.
func (s *Service) RetiredCount() int { return len(s.retired.load()) }

// Serve resolves a request through the shared handout path and filters
// retired bridges out of the response. The ring is never rebuilt —
// survivors keep their arc positions — so the filtered handout is a
// subsequence of the pre-retirement one.
func (s *Service) Serve(req distrib.Request) (distrib.Handout, error) {
	req.Day = s.cfg.Day
	h, err := s.api.Serve(req)
	if err != nil {
		return distrib.Handout{}, err
	}
	retired := s.retired.load()
	if len(retired) > 0 && len(h.Resources) > 0 {
		kept := make([]distrib.Resource, 0, len(h.Resources))
		for _, r := range h.Resources {
			if !retired[r.Peer] {
				kept = append(kept, r)
			}
		}
		h.Resources = kept
	}
	return h, nil
}

// retire marks peers dead, publishes the extended retired set, rebuilds
// the manual-reseed bundle cache against it and refreshes the pool
// gauges. Handlers racing the swap serve either the old complete state
// or the new complete state.
func (s *Service) retire(peers []int) error {
	if len(peers) == 0 {
		return nil
	}
	s.retireMu.Lock()
	defer s.retireMu.Unlock()
	old := s.retired.load()
	next := make(map[int]bool, len(old)+len(peers))
	for p := range old {
		next[p] = true
	}
	changed := false
	for _, p := range peers {
		if !next[p] {
			next[p] = true
			changed = true
		}
	}
	if !changed {
		return nil
	}
	s.retired.store(next)
	if err := s.rebuildBundles(); err != nil {
		return err
	}
	s.refreshPoolGauges()
	return nil
}

// rebuildBundles pre-encodes one su3 bundle per manual-reseed partition
// slot against the current retired set and atomically swaps the table
// in. A missing manual-reseed frontend leaves the cache empty.
func (s *Service) rebuildBundles() error {
	part := s.backend.Partition("manual-reseed")
	if part == nil || part.Len() == 0 {
		return nil
	}
	d, ok := s.api.Distributor("manual-reseed")
	if !ok {
		return nil
	}
	g, ok := d.Grant(0, s.cfg.Day, 0)
	if !ok {
		return nil
	}
	retired := s.retired.load()
	res := part.Resources()
	groups := make([][]*netdb.RouterInfo, len(res))
	for slot := range res {
		arc := part.GetMany(res[slot].Key, g.Count)
		records := make([]*netdb.RouterInfo, 0, len(arc))
		for _, r := range arc {
			if !retired[r.Peer] {
				records = append(records, r.Record)
			}
		}
		groups[slot] = records
	}
	set, err := reseed.BuildBundleSet(groups, s.cfg.Signer, s.backend.When)
	if err != nil {
		return fmt.Errorf("service: rebuild bundle cache: %w", err)
	}
	s.bundles.Store(set)
	return nil
}

// refreshPoolGauges updates the per-distributor live pool-size gauges.
func (s *Service) refreshPoolGauges() {
	retired := s.retired.load()
	for _, name := range s.api.Distributors() {
		part := s.backend.Partition(name)
		if part == nil {
			continue
		}
		live := 0
		for _, r := range part.Resources() {
			if !retired[r.Peer] {
				live++
			}
		}
		s.metrics.SetPoolSize(name, live)
	}
}

// simProbe is the default reachability check: the bridge is up when its
// peer is online in the simulated network on the distribution day —
// what a kraken-style prober would learn by dialing the published
// address.
func (s *Service) simProbe(r distrib.Resource) error {
	if !s.net.Peers[r.Peer].ActiveOn(s.cfg.Day) {
		return fmt.Errorf("service: peer %d offline", r.Peer)
	}
	return nil
}

// atomicMap publishes an immutable map[int]bool by atomic pointer swap;
// readers never lock and stored maps are never mutated afterwards.
type atomicMap struct {
	p atomic.Pointer[map[int]bool]
}

func (a *atomicMap) load() map[int]bool {
	m := a.p.Load()
	if m == nil {
		return nil
	}
	return *m
}

func (a *atomicMap) store(m map[int]bool) { a.p.Store(&m) }
