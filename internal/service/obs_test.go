package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/obs"
	"github.com/i2pstudy/i2pstudy/internal/obs/promtest"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

// TestMetricsConformance runs the exposition through the structural
// parser instead of string matching: every family carries HELP/TYPE,
// histogram buckets are cumulative with +Inf == _count, no duplicate
// series — after real traffic, probes and pool-gauge refreshes.
func TestMetricsConformance(t *testing.T) {
	svc := newTestService(t, Config{})
	h := svc.Handler()
	get(t, h, "/handout?id=alice", "")
	get(t, h, "/handout?id=bob&dist=manual-reseed", "")
	get(t, h, "/handout", "") // 400: missing id
	svc.Metrics().ObserveProbe("ok")

	text := svc.Metrics().Render()
	if errs := promtest.Lint(text); len(errs) != 0 {
		t.Fatalf("exposition not conformant: %v\n%s", errs, text)
	}
	fams, err := promtest.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"i2pdistribd_requests_total",
		"i2pdistribd_pool_size",
		"i2pdistribd_probe_total",
		"i2pdistribd_handout_latency_seconds",
	} {
		if promtest.Find(fams, name) == nil {
			t.Errorf("family %q missing from exposition", name)
		}
	}
	// Every probe outcome renders even at zero, including the dedicated
	// panic label.
	probe := promtest.Find(fams, "i2pdistribd_probe_total")
	seen := map[string]bool{}
	for _, s := range probe.Samples {
		if v, ok := s.Get("outcome"); ok {
			seen[v] = true
		}
	}
	for _, o := range probeOutcomes {
		if !seen[o] {
			t.Errorf("probe outcome %q not rendered", o)
		}
	}
}

// TestSharedRegistryExposesEngineFamilies is the daemon acceptance path:
// a service built on an obs.Enable'd registry serves the engine counter
// families on the same /metrics page as the handout series, and the
// combined page passes the conformance parser.
func TestSharedRegistryExposesEngineFamilies(t *testing.T) {
	prev := obs.Active()
	reg := obs.NewRegistry()
	obs.Enable(reg)
	t.Cleanup(func() { obs.Enable(prev) })

	svc := newTestService(t, Config{Registry: reg})
	get(t, svc.Handler(), "/handout?id=alice", "")
	// The daemon's serve path is memo-free by design; touch an engine-side
	// day memo directly to prove its counts land on the shared page.
	network(t).NewObserver(sim.ObserverConfig{Seed: 7}).ObserveDay(10)
	text := svc.Metrics().Render()
	if errs := promtest.Lint(text); len(errs) != 0 {
		t.Fatalf("shared exposition not conformant: %v\n%s", errs, text)
	}
	fams, err := promtest.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"i2p_engine_tasks_total",
		"i2p_engine_steals_total",
		"i2p_engine_rows_planned_total",
		"i2p_cache_hits_total",
		"i2p_cache_misses_total",
		"i2p_windowcounter_pool_total",
		"i2pdistribd_requests_total",
		"i2pdistribd_probe_total",
	} {
		if promtest.Find(fams, name) == nil {
			t.Errorf("family %q missing from shared exposition:\n%s", name, text)
		}
	}
	// The fresh observer's first ObserveDay is a guaranteed miss, so the
	// cache families carry real traffic, not just pre-registered zeros.
	var traffic float64
	for _, name := range []string{"i2p_cache_hits_total", "i2p_cache_misses_total"} {
		for _, s := range promtest.Find(fams, name).Samples {
			traffic += s.Value
		}
	}
	if traffic == 0 {
		t.Error("no cache traffic counted after ObserveDay on the shared registry")
	}
}

// TestHealthzJSON: /healthz reports liveness, build identity and a
// clock-derived uptime as JSON.
func TestHealthzJSON(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	now := func() time.Time { return clk }
	svc := newTestService(t, Config{Now: now})
	clk = clk.Add(90 * time.Second)

	rw := get(t, svc.Handler(), "/healthz", "")
	if rw.Code != 200 {
		t.Fatalf("healthz status %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var h HealthJSON
	if err := json.Unmarshal(rw.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, rw.Body.String())
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.GoVersion == "" || !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version = %q", h.GoVersion)
	}
	if h.UptimeSeconds != 90 {
		t.Errorf("uptime_seconds = %v, want 90", h.UptimeSeconds)
	}
}

// TestProbePanicGetsOwnOutcome forces the recovery branch: a panicking
// ProbeFunc must not kill the sweep, counts under outcome="panic"
// (never "fail"), and still drives the streak to retirement.
func TestProbePanicGetsOwnOutcome(t *testing.T) {
	clk := time.Unix(1700000000, 0)
	now := func() time.Time { return clk }
	svc := newTestService(t, Config{
		Probe:        func(r distrib.Resource) error { panic("prober bug") },
		FailLimit:    2,
		ProbeBackoff: time.Nanosecond,
		Now:          now,
	})

	svc.ProbeOnce(context.Background())
	clk = clk.Add(time.Hour) // clear every backoff
	svc.ProbeOnce(context.Background())

	text := svc.Metrics().Render()
	fams, err := promtest.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	probe := promtest.Find(fams, "i2pdistribd_probe_total")
	byOutcome := map[string]float64{}
	for _, s := range probe.Samples {
		o, _ := s.Get("outcome")
		byOutcome[o] = s.Value
	}
	if byOutcome["panic"] == 0 {
		t.Errorf("panic outcome not counted:\n%s", text)
	}
	if byOutcome["fail"] != 0 {
		t.Errorf("panics leaked into the fail outcome (%v):\n%s", byOutcome["fail"], text)
	}
	if byOutcome["retired"] == 0 {
		t.Errorf("panicking probes never retired the bridge:\n%s", text)
	}
	if svc.RetiredCount() == 0 {
		t.Error("no bridge retired after FailLimit panics")
	}
}
