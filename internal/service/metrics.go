package service

import (
	"strconv"

	"github.com/i2pstudy/i2pstudy/internal/obs"
)

// This file is the /metrics exposition. The daemon's instrument set
// rides on internal/obs — the same zero-dependency registry the batch
// engines count into — so a shared registry (Config.Registry) makes one
// /metrics page carry the handout series next to the engine families
// (i2p_engine_*, i2p_cache_*, i2p_windowcounter_*).

// latencyBuckets are the handout-latency histogram upper bounds in
// seconds, spanning sub-microsecond in-process serves to second-scale
// stalls.
var latencyBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// probeOutcomes are the probe result labels, pre-created so every
// outcome renders (at zero) from the first scrape: "panic" is a probe
// that panicked rather than returned an error — a prober bug, not a
// dead bridge — and gets its own label instead of masquerading as fail.
var probeOutcomes = []string{"ok", "fail", "panic", "retired"}

// Metrics is the daemon's instrument set. All methods are safe for
// concurrent use; the hot-path instruments (request counters, the
// latency histogram) are lock-free after a series' first use.
type Metrics struct {
	reg *obs.Registry

	// requests counts handout requests by (distributor, status code).
	requests *obs.CounterVec
	// poolSize gauges the live (unretired) partition size per distributor.
	poolSize *obs.GaugeVec
	// probe counts probe outcomes.
	probe *obs.CounterVec
	// latency is the handout latency histogram, in seconds.
	latency *obs.Histogram
}

// NewMetrics returns an instrument set on its own private registry.
func NewMetrics() *Metrics { return NewMetricsOn(nil) }

// NewMetricsOn builds the instrument set on the given registry (nil: a
// fresh private one), so a caller that also obs.Enable's the registry
// gets the engine counter families on the same /metrics page.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{
		reg: reg,
		requests: reg.CounterVec("i2pdistribd_requests_total",
			"Handout requests by distributor and status code.", "dist", "code"),
		poolSize: reg.GaugeVec("i2pdistribd_pool_size",
			"Live (unretired) partition size per distributor.", "dist"),
		probe: reg.CounterVec("i2pdistribd_probe_total",
			"Reachability probe outcomes.", "outcome"),
		latency: reg.Histogram("i2pdistribd_handout_latency_seconds",
			"Handout request latency.", latencyBuckets),
	}
	for _, o := range probeOutcomes {
		m.probe.With(o)
	}
	return m
}

// Registry returns the registry backing the instrument set.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ObserveRequest records one handout request's distributor, status code
// and latency.
func (m *Metrics) ObserveRequest(dist string, code int, nanos int64) {
	m.requests.With(dist, strconv.Itoa(code)).Inc()
	m.latency.Observe(float64(nanos) / 1e9)
}

// SetPoolSize gauges a distributor's live partition size.
func (m *Metrics) SetPoolSize(dist string, n int) {
	m.poolSize.With(dist).Set(int64(n))
}

// ObserveProbe records one probe outcome ("ok", "fail", "panic") or a
// retirement.
func (m *Metrics) ObserveProbe(outcome string) {
	m.probe.With(outcome).Inc()
}

// Render writes the registry in the Prometheus text exposition format —
// every family on the backing registry, so a shared registry surfaces
// the engine counters here too.
func (m *Metrics) Render() string { return m.reg.RenderText() }
