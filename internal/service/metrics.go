package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the /metrics exposition. The container bakes in no
// dependency on a metrics client, so the counters are hand-rolled — a
// small fixed instrument set rendered in the Prometheus text format
// (counters, gauges, and one cumulative histogram), which is all the
// smoke job and dashboards need.

// latencyBuckets are the handout-latency histogram upper bounds in
// seconds, spanning sub-microsecond in-process serves to second-scale
// stalls.
var latencyBuckets = [numLatencyBuckets]float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

const numLatencyBuckets = 14

// Metrics is the daemon's instrument set. All methods are safe for
// concurrent use; the hot-path instruments (request counters, the
// latency histogram) are lock-free.
type Metrics struct {
	mu sync.Mutex
	// requests counts handout requests by (distributor, status code).
	requests map[string]*atomic.Uint64
	// poolSize gauges the live (unretired) partition size per distributor.
	poolSize map[string]*atomic.Int64

	// probe outcomes.
	probeOK      atomic.Uint64
	probeFail    atomic.Uint64
	probeRetired atomic.Uint64

	// handout latency histogram: cumulative bucket counts plus sum/count
	// (the extra slot is the +Inf overflow bucket).
	latCounts [numLatencyBuckets + 1]atomic.Uint64
	latSum    atomic.Uint64 // nanoseconds
	latN      atomic.Uint64
}

// NewMetrics returns an empty instrument set.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]*atomic.Uint64),
		poolSize: make(map[string]*atomic.Int64),
	}
}

// ObserveRequest records one handout request's distributor, status code
// and latency. The label set is tiny (distributor x status code), so the
// lock effectively only guards a counter's first use.
func (m *Metrics) ObserveRequest(dist string, code int, nanos int64) {
	key := fmt.Sprintf("dist=%q,code=\"%d\"", dist, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = new(atomic.Uint64)
		m.requests[key] = c
	}
	m.mu.Unlock()
	c.Add(1)

	secs := float64(nanos) / 1e9
	i := sort.SearchFloat64s(latencyBuckets[:], secs)
	m.latCounts[i].Add(1)
	m.latSum.Add(uint64(nanos))
	m.latN.Add(1)
}

// SetPoolSize gauges a distributor's live partition size.
func (m *Metrics) SetPoolSize(dist string, n int) {
	m.mu.Lock()
	g, ok := m.poolSize[dist]
	if !ok {
		g = new(atomic.Int64)
		m.poolSize[dist] = g
	}
	m.mu.Unlock()
	g.Store(int64(n))
}

// ObserveProbe records one probe outcome ("ok", "fail") or a retirement.
func (m *Metrics) ObserveProbe(outcome string) {
	switch outcome {
	case "ok":
		m.probeOK.Add(1)
	case "fail":
		m.probeFail.Add(1)
	case "retired":
		m.probeRetired.Add(1)
	}
}

// Render writes the instrument set in the Prometheus text exposition
// format, labels sorted for a stable output.
func (m *Metrics) Render() string {
	var b strings.Builder

	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	poolKeys := make([]string, 0, len(m.poolSize))
	for k := range m.poolSize {
		poolKeys = append(poolKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(poolKeys)

	b.WriteString("# HELP i2pdistribd_requests_total Handout requests by distributor and status code.\n")
	b.WriteString("# TYPE i2pdistribd_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(&b, "i2pdistribd_requests_total{%s} %d\n", k, m.requests[k].Load())
	}

	b.WriteString("# HELP i2pdistribd_pool_size Live (unretired) partition size per distributor.\n")
	b.WriteString("# TYPE i2pdistribd_pool_size gauge\n")
	for _, k := range poolKeys {
		fmt.Fprintf(&b, "i2pdistribd_pool_size{dist=%q} %d\n", k, m.poolSize[k].Load())
	}

	b.WriteString("# HELP i2pdistribd_probe_total Reachability probe outcomes.\n")
	b.WriteString("# TYPE i2pdistribd_probe_total counter\n")
	fmt.Fprintf(&b, "i2pdistribd_probe_total{outcome=\"ok\"} %d\n", m.probeOK.Load())
	fmt.Fprintf(&b, "i2pdistribd_probe_total{outcome=\"fail\"} %d\n", m.probeFail.Load())
	fmt.Fprintf(&b, "i2pdistribd_probe_total{outcome=\"retired\"} %d\n", m.probeRetired.Load())

	b.WriteString("# HELP i2pdistribd_handout_latency_seconds Handout request latency.\n")
	b.WriteString("# TYPE i2pdistribd_handout_latency_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i].Load()
		fmt.Fprintf(&b, "i2pdistribd_handout_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(&b, "i2pdistribd_handout_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "i2pdistribd_handout_latency_seconds_sum %g\n", float64(m.latSum.Load())/1e9)
	fmt.Fprintf(&b, "i2pdistribd_handout_latency_seconds_count %d\n", m.latN.Load())

	return b.String()
}
