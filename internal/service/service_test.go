package service

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

var (
	netOnce sync.Once
	netVal  *sim.Network
	netErr  error
)

// network returns the shared test network (built once per test binary).
func network(t testing.TB) *sim.Network {
	t.Helper()
	netOnce.Do(func() {
		netVal, netErr = sim.New(sim.Config{Seed: 2018, Days: 45, TargetDailyPeers: 600})
	})
	if netErr != nil {
		t.Fatal(netErr)
	}
	return netVal
}

// newTestService builds a service over the shared network on day 10 with
// the paper's combined pool strategy; cfg carries per-test overrides
// (rate limit, probe hooks, clock).
func newTestService(t testing.TB, cfg Config) *Service {
	t.Helper()
	if cfg.Day == 0 {
		cfg.Day = 10
	}
	cfg.Strategy = censor.BridgeCombined
	cfg.Seed = 2018
	svc, err := NewService(network(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// get drives one request through the handler without a socket.
func get(t testing.TB, h http.Handler, target, remote string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	if remote != "" {
		req.RemoteAddr = remote
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

// TestHandoutGoldenAcrossRestart is the restart half of the determinism
// contract: two independently built daemons over the same (seed, scale,
// day) serve byte-identical bodies on every endpoint — the JSON handout
// for each frontend and the signed seed bundle alike.
func TestHandoutGoldenAcrossRestart(t *testing.T) {
	build := func() *Service {
		n, err := sim.New(sim.Config{Seed: 2018, Days: 45, TargetDailyPeers: 500})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(n, Config{Day: 10, Strategy: censor.BridgeCombined, Seed: 2018})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	h1, h2 := build().Handler(), build().Handler()

	ids := []string{"alice", "bob", "carol-7", "load-123456"}
	granted := 0
	for _, dist := range []string{"https", "email", "social", "manual-reseed"} {
		for _, id := range ids {
			target := fmt.Sprintf("/handout?dist=%s&id=%s", dist, id)
			r1, r2 := get(t, h1, target, ""), get(t, h2, target, "")
			if r1.Code != http.StatusOK {
				t.Fatalf("GET %s: status %d", target, r1.Code)
			}
			if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
				t.Fatalf("GET %s: bodies differ across restart:\n%s\nvs\n%s",
					target, r1.Body.String(), r2.Body.String())
			}
			if strings.Contains(r1.Body.String(), `"granted":true`) {
				granted++
			}
		}
	}
	if granted == 0 {
		t.Fatal("no request was granted; the golden comparison is vacuous")
	}
	for _, id := range ids {
		target := "/" + reseed.SeedFileName + "?id=" + id
		r1, r2 := get(t, h1, target, ""), get(t, h2, target, "")
		if r1.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", target, r1.Code)
		}
		if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
			t.Fatalf("GET %s: seed bundles differ across restart", target)
		}
	}
}

// TestRateLimit429 drives one identity past its token bucket on a fake
// clock: the burst is served, the next request is 429 with Retry-After,
// an unrelated identity is unaffected, and the bucket refills with time.
func TestRateLimit429(t *testing.T) {
	var (
		mu  sync.Mutex
		clk = time.Unix(1700000000, 0)
	)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	svc := newTestService(t, Config{RatePerSec: 1, Burst: 2, Now: now})
	h := svc.Handler()

	for i := 0; i < 2; i++ {
		if r := get(t, h, "/handout?id=alice", ""); r.Code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, r.Code)
		}
	}
	r := get(t, h, "/handout?id=alice", "")
	if r.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", r.Code)
	}
	if r.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if r := get(t, h, "/handout?id=bob", ""); r.Code != http.StatusOK {
		t.Fatalf("unrelated identity rate-limited: status %d", r.Code)
	}
	advance(1500 * time.Millisecond)
	if r := get(t, h, "/handout?id=alice", ""); r.Code != http.StatusOK {
		t.Fatalf("bucket did not refill: status %d", r.Code)
	}
}

// bridgeAddr finds a published bridge address on the backend — the
// blacklist only speaks the study's interned address table.
func bridgeAddr(t *testing.T, svc *Service) netip.Addr {
	t.Helper()
	for _, name := range svc.HandoutAPI().Distributors() {
		for _, r := range svc.Backend().Partition(name).Resources() {
			for _, a := range r.Record.Addresses {
				if a.Addr.IsValid() {
					return a.Addr
				}
			}
		}
	}
	t.Fatal("no published bridge address in the pool")
	return netip.Addr{}
}

// TestBlacklist403 blocks a client address and watches the daemon refuse
// it on every identity until unblocked.
func TestBlacklist403(t *testing.T) {
	svc := newTestService(t, Config{})
	h := svc.Handler()
	addr := bridgeAddr(t, svc)
	remote := net.JoinHostPort(addr.String(), "4444")

	if r := get(t, h, "/handout?id=alice", remote); r.Code != http.StatusOK {
		t.Fatalf("pre-block: status %d", r.Code)
	}
	if !svc.Blacklist().Block(addr) {
		t.Fatalf("Block(%s) = false", addr)
	}
	for _, id := range []string{"alice", "bob"} {
		if r := get(t, h, "/handout?id="+id, remote); r.Code != http.StatusForbidden {
			t.Fatalf("blocked address served id=%s: status %d", id, r.Code)
		}
	}
	if r := get(t, h, "/"+reseed.SeedFileName+"?id=alice", remote); r.Code != http.StatusForbidden {
		t.Fatalf("blocked address served seeds: status %d", r.Code)
	}
	if r := get(t, h, "/handout?id=alice", "192.0.2.1:1"); r.Code != http.StatusOK {
		t.Fatalf("unrelated address caught by blacklist: status %d", r.Code)
	}
	if !svc.Blacklist().Unblock(addr) {
		t.Fatalf("Unblock(%s) = false", addr)
	}
	if r := get(t, h, "/handout?id=alice", remote); r.Code != http.StatusOK {
		t.Fatalf("post-unblock: status %d", r.Code)
	}
	if svc.Blacklist().Block(netip.MustParseAddr("203.0.113.99")) {
		t.Fatal("blocked an address the study never interned")
	}
}

// TestSeedsRoundTrip parses the served su3 bundle and checks it is
// exactly the requester's granted arc, signed by the configured signer.
func TestSeedsRoundTrip(t *testing.T) {
	svc := newTestService(t, Config{Signer: "roundtrip-test"})
	h := svc.Handler()

	const id = "seed-client"
	r := get(t, h, "/"+reseed.SeedFileName+"?id="+id, "")
	if r.Code != http.StatusOK {
		t.Fatalf("GET seeds: status %d", r.Code)
	}
	bundle, err := reseed.ParseBundle(r.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if bundle.Signer != "roundtrip-test" {
		t.Fatalf("bundle signer %q, want %q", bundle.Signer, "roundtrip-test")
	}

	api := svc.HandoutAPI()
	key, granted, err := api.Key(distrib.Request{Dist: "manual-reseed", ID: distrib.IdentityKey(id), Day: 10})
	if err != nil || !granted {
		t.Fatalf("Key: granted=%v err=%v", granted, err)
	}
	d, _ := api.Distributor("manual-reseed")
	g, _ := d.Grant(distrib.IdentityKey(id), 10, 0)
	want := svc.Backend().Partition("manual-reseed").GetMany(key, g.Count)
	if len(bundle.Records) != len(want) {
		t.Fatalf("bundle has %d records, want %d", len(bundle.Records), len(want))
	}
	for i, rec := range bundle.Records {
		if rec.Identity != want[i].Record.Identity {
			t.Fatalf("record %d identity mismatch", i)
		}
	}
}

// TestMetricsRender checks the exposition carries the request counters,
// pool gauges and the latency histogram after live traffic.
func TestMetricsRender(t *testing.T) {
	svc := newTestService(t, Config{})
	h := svc.Handler()

	get(t, h, "/handout?id=alice", "")
	get(t, h, "/handout?id=bob", "")
	get(t, h, "/handout", "") // missing id: 400

	r := get(t, h, "/metrics", "")
	if r.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", r.Code)
	}
	body := r.Body.String()
	for _, want := range []string{
		`i2pdistribd_requests_total{dist="https",code="200"} 2`,
		`i2pdistribd_requests_total{dist="https",code="400"} 1`,
		`i2pdistribd_pool_size{dist="https"}`,
		`i2pdistribd_probe_total{outcome="ok"}`,
		`i2pdistribd_handout_latency_seconds_count 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
