package service

import (
	"net/netip"
	"sync"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/censor"
)

// This file is the admission side of the daemon: a per-identity token
// bucket (the anti-enumeration rate limit every rdsys frontend applies
// before its distributor even sees the request) and an operator
// blacklist backed by the same censor.AddrSet bitsets the batch sweeps
// block against — reported abuser addresses intern onto the study's
// address table via AddrIndex.IDOf.

// limiterShards keeps bucket contention off the parallel hot path; the
// shard of an identity is a pure function of its key.
const limiterShards = 64

// bucket is one identity's token bucket. Tokens are in request units.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter is a sharded per-identity token bucket. Identities are the
// ring keys requests already carry, so the limiter needs no extra
// hashing. Safe for concurrent use.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64
	// maxPerShard bounds memory under identity floods: when a shard
	// fills, its table resets — a flood forgets oldest-first anyway, and
	// the simulation never needs an exact LRU.
	maxPerShard int
	now         func() time.Time

	shards [limiterShards]struct {
		mu sync.Mutex
		m  map[uint64]*bucket
	}
}

// NewLimiter returns a limiter granting rate requests per second with
// the given burst (<= 0: burst 2). rate <= 0 disables limiting — Allow
// always grants.
func NewLimiter(rate float64, burst int, now func() time.Time) *Limiter {
	if burst <= 0 {
		burst = 2
	}
	if now == nil {
		now = time.Now
	}
	l := &Limiter{rate: rate, burst: float64(burst), maxPerShard: 1 << 16, now: now}
	for i := range l.shards {
		l.shards[i].m = make(map[uint64]*bucket)
	}
	return l
}

// Allow reports whether the identity may make one request now.
func (l *Limiter) Allow(id uint64) bool {
	if l.rate <= 0 {
		return true
	}
	s := &l.shards[(id^id>>32)%limiterShards]
	now := l.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[id]
	if !ok {
		if len(s.m) >= l.maxPerShard {
			s.m = make(map[uint64]*bucket)
		}
		s.m[id] = &bucket{tokens: l.burst - 1, last: now}
		return true
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Blacklist is the operator blacklist: an AddrSet over the study's
// interned address table, shared representation with the censor sweeps.
// Mutations take the write lock; the hot-path membership check only
// takes the read lock.
type Blacklist struct {
	ix *censor.AddrIndex

	mu  sync.RWMutex
	set *censor.AddrSet
}

// NewBlacklist returns an empty blacklist over the index.
func NewBlacklist(ix *censor.AddrIndex) *Blacklist {
	return &Blacklist{ix: ix, set: ix.NewSet()}
}

// Block adds an address. Addresses the study never interned are
// unblockable — they cannot reach the ring either — and report false.
func (b *Blacklist) Block(a netip.Addr) bool {
	id := b.ix.IDOf(a)
	if id < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.set.Add(id)
}

// Unblock removes an address.
func (b *Blacklist) Unblock(a netip.Addr) bool {
	id := b.ix.IDOf(a)
	if id < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.set.Remove(id)
}

// Blocked reports whether an address is blacklisted.
func (b *Blacklist) Blocked(a netip.Addr) bool {
	id := b.ix.IDOf(a)
	if id < 0 {
		return false
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.set.Has(id)
}

// Len returns the number of blacklisted addresses.
func (b *Blacklist) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.set.Len()
}
