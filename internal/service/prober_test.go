package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/distrib"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
)

// TestProberRetiresDeadBridge is the serving half of the stable-
// assignment invariant (the ring half is FuzzHashringAssignment's
// retirement section): a bridge failing FailLimit consecutive probes is
// retired, its handouts shrink to an order-preserving subsequence,
// identities it never served are byte-unchanged, the manual-reseed
// bundle cache is rebuilt without it, and no partition is rebuilt.
func TestProberRetiresDeadBridge(t *testing.T) {
	var (
		mu  sync.Mutex
		clk = time.Unix(1700000000, 0)
	)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	dead := make(map[int]bool) // mutated before any ProbeOnce call only
	probe := func(r distrib.Resource) error {
		if dead[r.Peer] {
			return errors.New("probe: connection refused")
		}
		return nil
	}
	svc := newTestService(t, Config{
		Probe:        probe,
		Now:          now,
		FailLimit:    2,
		ProbeBackoff: time.Second,
	})
	h := svc.Handler()
	ctx := context.Background()

	httpsPart := svc.Backend().Partition("https")
	mrPart := svc.Backend().Partition("manual-reseed")
	target := httpsPart.Resources()[0].Peer
	flapper := httpsPart.Resources()[1].Peer
	mrTarget := mrPart.Resources()[0].Peer
	mrIdentity := mrPart.Resources()[0].Record.Identity
	poolSizes := make(map[string]int)
	for _, name := range svc.HandoutAPI().Distributors() {
		poolSizes[name] = svc.Backend().Partition(name).Len()
	}

	// An identity served the https target, one that is not, and one whose
	// seed bundle carries the manual-reseed target.
	servesPeer := func(dist string, id string, peer int) (distrib.Handout, bool) {
		h, err := svc.Serve(distrib.Request{Dist: dist, ID: distrib.IdentityKey(id)})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range h.Resources {
			if r.Peer == peer {
				return h, true
			}
		}
		return h, false
	}
	var hitID, missID, seedID string
	var before distrib.Handout
	for i := 0; hitID == "" || missID == "" || seedID == ""; i++ {
		if i > 100000 {
			t.Fatal("could not find probe identities")
		}
		id := fmt.Sprintf("probe-%d", i)
		if h, hit := servesPeer("https", id, target); hit && hitID == "" {
			hitID, before = id, h
		} else if !hit && missID == "" {
			missID = id
		}
		if seedID == "" {
			if _, hit := servesPeer("manual-reseed", id, mrTarget); hit {
				seedID = id
			}
		}
	}
	missBefore := get(t, h, "/handout?id="+missID, "").Body.Bytes()
	seedBefore := get(t, h, "/"+reseed.SeedFileName+"?id="+seedID, "").Body.Bytes()
	if b, err := reseed.ParseBundle(seedBefore); err != nil {
		t.Fatal(err)
	} else if !containsIdentity(b, mrIdentity) {
		t.Fatal("pre-retirement seed bundle missing the target record")
	}

	// Kill both targets plus a flapper. One failure is a streak, not a
	// retirement; a probe inside the backoff window is skipped; the
	// second counted failure retires.
	dead[target], dead[mrTarget], dead[flapper] = true, true, true
	svc.ProbeOnce(ctx)
	if svc.Retired(target) {
		t.Fatal("retired after a single probe failure")
	}
	svc.ProbeOnce(ctx) // still inside backoff: must not advance the streak
	if svc.Retired(target) {
		t.Fatal("backoff window did not suppress the re-probe")
	}
	delete(dead, flapper) // recovers before its second probe
	advance(2 * time.Second)
	svc.ProbeOnce(ctx)
	if !svc.Retired(target) || !svc.Retired(mrTarget) {
		t.Fatalf("targets not retired after FailLimit failures (retired=%d)", svc.RetiredCount())
	}
	if svc.RetiredCount() != 2 {
		t.Fatalf("RetiredCount = %d, want 2", svc.RetiredCount())
	}

	// The dead bridge's handout shrinks to an order-preserving
	// subsequence; everything else about it is unchanged.
	after, err := svc.Serve(distrib.Request{Dist: "https", ID: distrib.IdentityKey(hitID)})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Resources) != len(before.Resources)-1 {
		t.Fatalf("filtered handout has %d resources, want %d", len(after.Resources), len(before.Resources)-1)
	}
	j := 0
	for _, r := range after.Resources {
		if r.Peer == target {
			t.Fatal("retired bridge still served")
		}
		for j < len(before.Resources) && before.Resources[j].Peer != r.Peer {
			j++
		}
		if j == len(before.Resources) {
			t.Fatal("filtered handout is not a subsequence of the original")
		}
		j++
	}

	// Identities the dead bridge never served are byte-unchanged.
	if missAfter := get(t, h, "/handout?id="+missID, "").Body.Bytes(); !bytes.Equal(missBefore, missAfter) {
		t.Fatal("handout without the dead bridge changed under retirement")
	}

	// The seed bundle was rebuilt without the dead record, survivors in
	// order; and no partition was rebuilt — survivors keep their arcs.
	seedAfter := get(t, h, "/"+reseed.SeedFileName+"?id="+seedID, "").Body.Bytes()
	b, err := reseed.ParseBundle(seedAfter)
	if err != nil {
		t.Fatal(err)
	}
	if containsIdentity(b, mrIdentity) {
		t.Fatal("rebuilt seed bundle still carries the retired record")
	}
	for name, n := range poolSizes {
		if got := svc.Backend().Partition(name).Len(); got != n {
			t.Fatalf("partition %s rebuilt under retirement: %d -> %d resources", name, n, got)
		}
	}

	// Metrics saw the retirements and the gauge dropped.
	metrics := svc.Metrics().Render()
	for _, want := range []string{
		`i2pdistribd_probe_total{outcome="retired"} 2`,
		fmt.Sprintf(`i2pdistribd_pool_size{dist="https"} %d`, poolSizes["https"]-1),
		fmt.Sprintf(`i2pdistribd_pool_size{dist="manual-reseed"} %d`, poolSizes["manual-reseed"]-1),
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, metrics)
		}
	}

	// The flapper recovered before FailLimit: not retired, streak reset.
	if svc.Retired(flapper) {
		t.Fatal("flapping bridge retired despite recovering")
	}
	if _, ok := svc.streaks[flapper]; ok {
		t.Fatalf("flapper streak not cleared after recovery: %v", svc.streaks)
	}
}

// TestProberBackoffClampsOnLongStreaks is the shift-overflow
// regression: with a FailLimit large enough that a dying bridge keeps
// failing past 63 consecutive probes, the backoff exponent used to run
// off the end of time.Duration (ProbeBackoff << 63 wraps negative),
// which put nextDue in the past and turned the dying bridge into a
// hot probe loop. The backoff must stay positive and capped at 16x for
// arbitrarily long streaks.
func TestProberBackoffClampsOnLongStreaks(t *testing.T) {
	var (
		mu  sync.Mutex
		clk = time.Unix(1700000000, 0)
	)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clk }
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	probe := func(r distrib.Resource) error { return errors.New("probe: connection refused") }
	svc := newTestService(t, Config{
		Probe:        probe,
		Now:          now,
		FailLimit:    200,
		ProbeBackoff: time.Second,
	})
	ctx := context.Background()
	peer := svc.Backend().Partition("https").Resources()[0].Peer
	maxBackoff := 16 * time.Second

	for i := 0; i < 80; i++ {
		svc.ProbeOnce(ctx)
		due, ok := svc.nextDue[peer]
		if !ok {
			t.Fatalf("probe %d: failure recorded no backoff", i)
		}
		backoff := due.Sub(now())
		if backoff <= 0 {
			t.Fatalf("probe %d (streak %d): backoff %v is not positive — shift overflow",
				i, svc.streaks[peer], backoff)
		}
		if backoff > maxBackoff {
			t.Fatalf("probe %d (streak %d): backoff %v exceeds the 16x cap %v",
				i, svc.streaks[peer], backoff, maxBackoff)
		}
		advance(backoff) // land exactly on due: the next sweep re-probes
	}
	if got := svc.streaks[peer]; got != 80 {
		t.Fatalf("streak reached %d, want 80 — the loop stopped probing past the shift width", got)
	}
	if svc.Retired(peer) {
		t.Fatal("bridge retired below FailLimit")
	}
}

func containsIdentity(b *reseed.Bundle, id netdb.Hash) bool {
	for _, rec := range b.Records {
		if rec.Identity == id {
			return true
		}
	}
	return false
}

// TestRunProberStopsOnCancel covers the loop's graceful-shutdown path.
func TestRunProberStopsOnCancel(t *testing.T) {
	svc := newTestService(t, Config{ProbeInterval: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.RunProber(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunProber returned %v on cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunProber did not stop on ctx cancel")
	}
}
