package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"sync"
	"time"
)

// This file is the service's load generator: millions of distinct
// requesting identities driven through the real handler stack
// in-process (no sockets), measuring throughput and tail latency and
// spot-checking the determinism contract — the same identity must
// receive byte-identical JSON every time. It backs
// BenchmarkServiceHandout and the acceptance run behind
// BENCH_service.json.

// LoadGenConfig parameterizes a run.
type LoadGenConfig struct {
	// Identities is how many distinct identities request once.
	Identities int
	// Workers is the driving concurrency (<= 0: one per CPU).
	Workers int
	// Dist is the requested frontend (default "https").
	Dist string
	// VerifyEvery re-requests every Nth identity and byte-compares the
	// two bodies (<= 0: 1000; the duplicate requests count toward
	// throughput).
	VerifyEvery int
}

// LoadGenResult reports a run.
type LoadGenResult struct {
	Requests       int           `json:"requests"`
	Errors         int           `json:"errors"`
	Verified       int           `json:"verified"`
	Mismatches     int           `json:"mismatches"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	RequestsPerSec float64       `json:"requests_per_sec"`
	P99Latency     time.Duration `json:"p99_latency_ns"`
}

// discardWriter is the leanest possible http.ResponseWriter: it captures
// the status code and, only when capture is set, the body — the load
// generator verifies a sampled subset and discards the rest.
type discardWriter struct {
	code    int
	capture bool
	body    bytes.Buffer
	header  http.Header
}

func (w *discardWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *discardWriter) WriteHeader(code int) { w.code = code }

func (w *discardWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if w.capture {
		w.body.Write(p)
	}
	return len(p), nil
}

// LoadGen drives cfg.Identities distinct identities through the handler
// and reports throughput, p99 latency, and determinism spot-checks.
func (s *Service) LoadGen(ctx context.Context, cfg LoadGenConfig) (LoadGenResult, error) {
	if cfg.Identities <= 0 {
		return LoadGenResult{}, fmt.Errorf("service: loadgen needs identities")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Dist == "" {
		cfg.Dist = "https"
	}
	if cfg.VerifyEvery <= 0 {
		cfg.VerifyEvery = 1000
	}
	handler := s.Handler()

	var (
		mu       sync.Mutex
		res      LoadGenResult
		allLats  []int64
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			lats := make([]int64, 0, cfg.Identities/cfg.Workers+1)
			requests, errors, verified, mismatches := 0, 0, 0, 0
			var rw discardWriter
			do := func(id string, capture bool) []byte {
				rw = discardWriter{capture: capture}
				req := &http.Request{
					Method:     http.MethodGet,
					URL:        &url.URL{Path: "/handout", RawQuery: "dist=" + cfg.Dist + "&id=" + id},
					RemoteAddr: "192.0.2.1:9999",
				}
				t0 := time.Now()
				handler.ServeHTTP(&rw, req)
				lats = append(lats, time.Since(t0).Nanoseconds())
				requests++
				if rw.code != http.StatusOK {
					errors++
				}
				return rw.body.Bytes()
			}
			for n, i := 0, worker; i < cfg.Identities; n, i = n+1, i+cfg.Workers {
				if n%1024 == 0 && ctx.Err() != nil {
					break
				}
				id := fmt.Sprintf("load-%d", i)
				verify := i%cfg.VerifyEvery == 0
				first := append([]byte(nil), do(id, verify)...)
				if verify {
					second := do(id, true)
					verified++
					if !bytes.Equal(first, second) {
						mismatches++
					}
				}
			}
			mu.Lock()
			res.Requests += requests
			res.Errors += errors
			res.Verified += verified
			res.Mismatches += mismatches
			allLats = append(allLats, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		firstErr = err
	}
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.RequestsPerSec = float64(res.Requests) / res.Elapsed.Seconds()
	}
	if len(allLats) > 0 {
		sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
		idx := len(allLats) * 99 / 100
		if idx >= len(allLats) {
			idx = len(allLats) - 1
		}
		res.P99Latency = time.Duration(allLats[idx])
	}
	return res, firstErr
}
