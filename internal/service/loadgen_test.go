package service

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"testing"
)

// TestServiceLoadGen runs a small load generation end to end: every
// request succeeds and every determinism spot-check matches.
func TestServiceLoadGen(t *testing.T) {
	svc := newTestService(t, Config{})
	res, err := svc.LoadGen(context.Background(), LoadGenConfig{Identities: 3000, VerifyEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Mismatches != 0 {
		t.Fatalf("loadgen: %d errors, %d mismatches", res.Errors, res.Mismatches)
	}
	if res.Verified != 30 {
		t.Fatalf("verified %d identities, want 30", res.Verified)
	}
	if res.Requests != 3030 { // 3000 identities + 30 verification re-requests
		t.Fatalf("loadgen made %d requests, want 3030", res.Requests)
	}
	if res.RequestsPerSec <= 0 || res.P99Latency <= 0 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
}

// TestServiceLoadGenMillionIdentities is the ISSUE's acceptance run: the
// daemon survives one million distinct identities with per-identity
// deterministic handouts. Skipped under -short.
func TestServiceLoadGenMillionIdentities(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-identity load run skipped under -short")
	}
	svc := newTestService(t, Config{})
	res, err := svc.LoadGen(context.Background(), LoadGenConfig{Identities: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Mismatches != 0 {
		t.Fatalf("loadgen: %d errors, %d mismatches", res.Errors, res.Mismatches)
	}
	if res.Requests < 1_000_000 {
		t.Fatalf("loadgen made %d requests, want >= 1M", res.Requests)
	}
	t.Logf("1M identities: %.0f req/s, p99 %v", res.RequestsPerSec, res.P99Latency)
}

// TestLoadGenCancellation covers the ctx exit: a cancelled run stops
// early and reports the cancellation.
func TestLoadGenCancellation(t *testing.T) {
	svc := newTestService(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := svc.LoadGen(ctx, LoadGenConfig{Identities: 1_000_000, Workers: 2})
	if err == nil {
		t.Fatal("cancelled loadgen returned nil error")
	}
	if res.Requests >= 1_000_000 {
		t.Fatal("cancelled loadgen ran to completion")
	}
}

// benchRequest drives one /handout request through the handler with the
// load generator's no-socket writer.
func benchRequest(b *testing.B, h http.Handler, id string) {
	rw := discardWriter{}
	req := &http.Request{
		Method:     http.MethodGet,
		URL:        &url.URL{Path: "/handout", RawQuery: "dist=https&id=" + id},
		RemoteAddr: "192.0.2.1:9999",
	}
	h.ServeHTTP(&rw, req)
	if rw.code != http.StatusOK {
		b.Fatalf("handout status %d", rw.code)
	}
}

// BenchmarkServiceHandoutSerial measures the single-requester handout
// path: admission, grant, arc walk, JSON encoding.
func BenchmarkServiceHandoutSerial(b *testing.B) {
	svc := newTestService(b, Config{})
	h := svc.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, h, "bench-"+strconv.Itoa(i))
	}
}

// BenchmarkServiceHandoutParallel measures the same path under one
// requester per core, each with a distinct identity stream.
func BenchmarkServiceHandoutParallel(b *testing.B) {
	svc := newTestService(b, Config{})
	h := svc.Handler()
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchRequest(b, h, "bench-"+strconv.FormatInt(ctr.Add(1), 10))
		}
	})
}
