package i2pstudy_test

import (
	"math/rand/v2"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/i2pstudy/i2pstudy"
	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/eepsite"
	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
	"github.com/i2pstudy/i2pstudy/internal/sim"
	"github.com/i2pstudy/i2pstudy/internal/tunnel"
)

func TestFacadeAPI(t *testing.T) {
	if len(i2pstudy.Experiments()) < 20 {
		t.Fatalf("registry too small: %d", len(i2pstudy.Experiments()))
	}
	if _, ok := i2pstudy.Lookup("figure-13"); !ok {
		t.Fatal("figure-13 missing from facade")
	}
	opts := i2pstudy.DefaultOptions()
	if opts.TargetDailyPeers <= 0 || opts.Days < 40 {
		t.Fatal("default options malformed")
	}
	full := i2pstudy.FullScaleOptions()
	if full.TargetDailyPeers != 30500 || full.Days != 90 {
		t.Fatal("full-scale options do not match the paper")
	}
}

// TestEndToEndPipeline drives the whole stack through its public seams:
// simulate -> observe -> persist netDb to disk -> reload -> serve over a
// real reseed HTTP server -> bootstrap a fresh client -> build tunnels ->
// fetch an eepsite -> then repeat the fetch under a censor blacklist.
func TestEndToEndPipeline(t *testing.T) {
	network, err := sim.New(sim.Config{Seed: 77, Days: 42, TargetDailyPeers: 1500})
	if err != nil {
		t.Fatal(err)
	}
	day := 20
	now := network.DayTime(day)

	// Step 1: a measurement campaign with on-disk snapshots (the paper's
	// netDb-directory watching).
	snapDir := t.TempDir()
	campaign, err := measure.NewCampaign(network, measure.CampaignConfig{
		Observers:   measure.DefaultObserverFleet(4),
		StartDay:    day,
		EndDay:      day + 1,
		SnapshotDir: snapDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ds.TotalPeers() == 0 {
		t.Fatal("campaign observed nothing")
	}

	// Step 2: reload the snapshot from disk — every record must parse and
	// carry a verifiable integrity tag.
	store := netdb.NewStore(false)
	loaded, err := store.LoadDir(filepath.Join(snapDir, "day-020", "netDb"), now)
	if err != nil {
		t.Fatal(err)
	}
	if loaded < ds.Days[0].Peers/2 {
		t.Fatalf("reloaded %d of %d records", loaded, ds.Days[0].Peers)
	}

	// Step 3: run a reseed server over real HTTP, backed by the reloaded
	// store, and bootstrap a fresh client from it.
	srv := reseed.NewServer("integration-reseed", 75, store.RouterInfos, 5)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bundle, err := reseed.FetchHTTP(ts.Client(), ts.URL+"/"+reseed.SeedFileName)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Records) == 0 {
		t.Fatal("empty reseed bundle")
	}
	clientStore := netdb.NewStore(false)
	for _, ri := range bundle.Records {
		clientStore.PutRouterInfo(ri, now)
	}

	// Step 4: the bootstrapped client builds tunnels from its fresh netDb
	// and fetches an eepsite.
	rng := rand.New(rand.NewPCG(9, 9))
	candidates := clientStore.RouterInfos()
	pool := tunnel.NewPool(netdb.HashFromUint64(999999), tunnel.DefaultSelector(), &tunnel.Builder{}, 2)
	if _, err := pool.Maintain(candidates, now, rng); err != nil {
		t.Fatalf("tunnel build from bootstrapped netDb: %v", err)
	}
	in, out := pool.Tunnels()
	if in == nil || out == nil {
		t.Fatal("tunnels missing")
	}
	// Garlic round trip through the freshly built outbound tunnel.
	payload := []byte("GET / HTTP/1.1")
	wrapped := tunnel.WrapLayers(out, payload)
	got, err := tunnel.TraverseTunnel(out, wrapped)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("garlic traversal failed: %v", err)
	}

	site := eepsite.NewSite(netdb.HashFromUint64(31337))
	client := eepsite.NewClient(candidates, nil)
	res, err := client.Fetch(site, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeout() {
		t.Fatal("unblocked fetch timed out")
	}

	// Step 5: a censor blacklists the network; the same client's fetches
	// degrade into 504s.
	cz, err := censor.NewCensor(network, 20, 5, 404)
	if err != nil {
		t.Fatal(err)
	}
	blockedPeer := cz.BlockedPeerFunc(20, day)
	byHash := make(map[netdb.Hash]int)
	for _, idx := range network.ActivePeers(day) {
		byHash[network.Peers[idx].ID] = idx
	}
	blocked := func(h netdb.Hash) bool {
		idx, ok := byHash[h]
		return ok && blockedPeer(idx)
	}
	blockedClient := eepsite.NewClient(candidates, blocked)
	stats, err := blockedClient.Crawl(site, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TimeoutPct() < 30 {
		t.Fatalf("strong censor produced only %.0f%% timeouts", stats.TimeoutPct())
	}
	if stats.MeanLoad <= res.LoadTime {
		t.Fatal("blocking did not increase load time")
	}
}

// TestStudyDeterminism: identical options give byte-identical artifacts.
func TestStudyDeterminism(t *testing.T) {
	opts := i2pstudy.DefaultOptions()
	opts.TargetDailyPeers = 800
	a, err := i2pstudy.NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := i2pstudy.NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"figure-09", "figure-13"} {
		ra, err := a.RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Text != rb.Text {
			t.Fatalf("%s: artifacts differ between identical studies", id)
		}
	}
}

// TestStudyWorkerDeterminism: the engine's worker count must never leak
// into an artifact — a Workers=1 study and a Workers=8 study render
// byte-identical figures, including the campaign-backed ones.
func TestStudyWorkerDeterminism(t *testing.T) {
	opts := i2pstudy.DefaultOptions()
	opts.TargetDailyPeers = 800
	opts.Workers = 1
	serial, err := i2pstudy.NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := i2pstudy.NewStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"figure-04", "figure-05", "table-01"} {
		ra, err := serial.RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := parallel.RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Text != rb.Text {
			t.Fatalf("%s: artifact depends on worker count", id)
		}
	}
}

// TestFullScaleSmoke builds the paper-scale network (guarded by -short).
func TestFullScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale network build skipped in -short mode")
	}
	start := time.Now()
	network, err := sim.New(sim.Config{Seed: 1, Days: 90, TargetDailyPeers: 30500})
	if err != nil {
		t.Fatal(err)
	}
	active := len(network.ActivePeers(45))
	if active < 24000 || active > 37000 {
		t.Fatalf("full-scale day-45 actives = %d, want ~30.5K", active)
	}
	o := network.NewObserver(sim.ObserverConfig{Floodfill: false, SharedKBps: sim.MaxSharedKBps, Seed: 3})
	seen := len(o.ObserveDay(45))
	if seen < 12000 || seen > 20000 {
		t.Fatalf("full-scale single-router view = %d, want ~15-16K (paper Figure 2)", seen)
	}
	t.Logf("full-scale build+observe took %s: %d actives, %d observed", time.Since(start).Round(time.Millisecond), active, seen)
}
