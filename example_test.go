package i2pstudy_test

import (
	"fmt"
	"log"

	"github.com/i2pstudy/i2pstudy"
)

// ExampleExperiments lists the registry: one experiment per table and
// figure in the paper's evaluation, plus the extension studies.
func ExampleExperiments() {
	for _, e := range i2pstudy.Experiments()[:4] {
		fmt.Println(e.ID)
	}
	// Output:
	// ablation-flood-fanout
	// ablation-observer-mix
	// bridge-distribution
	// bridge-strategies
}

// ExampleNewStudy builds a small deterministic study and runs the
// Section 2.2.2 port-blocking experiment. Identical options always give
// identical results.
func ExampleNewStudy() {
	study, err := i2pstudy.NewStudy(i2pstudy.Options{
		Seed:             1,
		Days:             45,
		TargetDailyPeers: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.RunExperiment("port-blocking")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("I2P peers blocked by the port rule: %.0f%%\n", res.Metrics["i2p_blocked_pct"])
	fmt.Printf("address-blocking collateral: %.0f%%\n", res.Metrics["address_collateral_pct"])
	// Output:
	// I2P peers blocked by the port rule: 100%
	// address-blocking collateral: 0%
}

// ExampleStudy_RunExperiment regenerates one of the paper's artifacts and
// prints its headline metric names.
func ExampleStudy_RunExperiment() {
	study, err := i2pstudy.NewStudy(i2pstudy.Options{
		Seed:             1,
		Days:             45,
		TargetDailyPeers: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := study.RunExperiment("reseed-blocking")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap fails when reseeds are blocked: %v\n", res.Metrics["blocked_bootstrap_fail"] == 1)
	// Output:
	// bootstrap fails when reseeds are blocked: true
}
