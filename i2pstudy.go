// Package i2pstudy reproduces "An Empirical Study of the I2P Anonymity
// Network and its Censorship Resistance" (Hoang, Kintis, Antonakakis,
// Polychronakis — IMC 2018) as a self-contained Go library.
//
// The live I2P network is replaced by a calibrated synthetic network (see
// DESIGN.md for the substitution argument); everything above it is real
// systems code: the netDb data structures and wire codecs, the Kademlia
// XOR metric with daily routing-key rotation, an NTCP-style obfuscated
// transport over TCP, tunnels with layered CBC encryption, reseed servers
// with signed su3-style bundles, the measurement pipeline behind every
// figure in the paper's Section 5, and the Section 6 censorship models.
//
// Quick start:
//
//	study, err := i2pstudy.NewStudy(i2pstudy.DefaultOptions())
//	if err != nil { ... }
//	res, err := study.RunExperiment("figure-13")
//	fmt.Println(res.Text)
//
// The experiment registry (Experiments) contains one entry per table and
// figure in the paper plus the extension studies; cmd/i2pmeasure and
// cmd/i2pcensor expose the same registry on the command line, and
// bench_test.go regenerates every artifact under `go test -bench`.
package i2pstudy

import (
	"github.com/i2pstudy/i2pstudy/internal/core"
)

// Study owns a synthetic network and caches the main measurement campaign.
// See core.Study.
type Study = core.Study

// Options configures a Study.
type Options = core.Options

// Experiment is one registered paper artifact.
type Experiment = core.Experiment

// Result is the outcome of running an experiment.
type Result = core.Result

// NewStudy builds a study for the given options.
func NewStudy(opts Options) (*Study, error) { return core.NewStudy(opts) }

// DefaultOptions returns the 1/10-scale configuration used by tests and
// benches: every shape statistic matches the paper; absolute counts scale
// by Study.Scale().
func DefaultOptions() Options { return core.DefaultOptions() }

// FullScaleOptions returns the paper-scale configuration: ~30.5K daily
// peers over 90 days.
func FullScaleOptions() Options { return core.FullScaleOptions() }

// Experiment categories; every registered experiment carries one.
const (
	CategoryPopulation   = core.CategoryPopulation
	CategoryCensorship   = core.CategoryCensorship
	CategoryAblation     = core.CategoryAblation
	CategoryDistribution = core.CategoryDistribution
)

// Experiments lists every registered experiment sorted by ID.
func Experiments() []Experiment { return core.Experiments() }

// ExperimentIDs lists the IDs of experiments in a category (all when
// empty), sorted.
func ExperimentIDs(category string) []string { return core.ExperimentIDs(category) }

// Lookup returns the experiment registered under id.
func Lookup(id string) (Experiment, bool) { return core.Lookup(id) }
