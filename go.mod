module github.com/i2pstudy/i2pstudy

go 1.22
