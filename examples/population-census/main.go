// Population census: the paper's first research question — "What is the
// population of I2P peers in the network?" — answered end to end with the
// measurement pipeline: run a 20-router campaign (10 floodfill + 10
// non-floodfill, as in Section 5), then derive the population, churn,
// capacity and geography statistics.
//
// Run with:
//
//	go run ./examples/population-census
package main

import (
	"fmt"
	"log"

	"github.com/i2pstudy/i2pstudy/internal/measure"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

func main() {
	log.SetFlags(0)

	// A 1/10-scale network over 45 days.
	network, err := sim.New(sim.Config{Seed: 7, Days: 45, TargetDailyPeers: 3050})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's main fleet: 20 observers at 8 MB/s, alternating modes.
	campaign, err := measure.NewCampaign(network, measure.CampaignConfig{
		Observers: measure.DefaultObserverFleet(20),
		StartDay:  0,
		EndDay:    45,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := campaign.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign: %d days, %d distinct peers, %.0f peers/day on average\n\n",
		len(ds.Days), ds.TotalPeers(), ds.MeanDailyPeers())

	// Population (Figure 5) and the unknown-IP decomposition (Figure 6).
	last := ds.Days[len(ds.Days)-1]
	fmt.Printf("final day: %d peers, %d unique IPs (%d IPv4, %d IPv6)\n",
		last.Peers, last.IPAll, last.IPv4, last.IPv6)
	fmt.Printf("unknown-IP: %d (firewalled %d, hidden %d, overlapping %d)\n\n",
		last.UnknownIP, last.Firewalled, last.Hidden, last.Overlap)

	// Churn (Figure 7).
	p7, p30 := ds.ChurnAt(7), ds.ChurnAt(30)
	fmt.Printf("churn: >=7d %.1f%% continuous / %.1f%% intermittent; >=30d %.1f%% / %.1f%%\n\n",
		p7.Continuous, p7.Intermittent, p30.Continuous, p30.Intermittent)

	// Capacity flags (Figure 9 / Table 1).
	fmt.Println(ds.RenderTable1())

	// The Section 5.3.1 population estimate.
	est := ds.EstimateFloodfillPopulation()
	fmt.Printf("floodfills: %.0f/day (%.1f%%), %.1f%% qualified -> population estimate %.0f\n\n",
		est.MeanDailyFloodfills, 100*est.FloodfillShare, 100*est.QualifiedShare, est.PopulationEstimate)

	// Geography (Figures 10-12).
	fmt.Println(measure.TopGeo(ds.CountryCounter(), 10, "country"))
	fmt.Println(measure.TopGeo(ds.ASCounter(), 10, "ASN"))
	cens := ds.CensoredPeers(network.GeoDB())
	fmt.Printf("censored countries with peers: %d, total %d peers, led by %v\n",
		cens.Countries, cens.TotalPeers, cens.Top[0])

	single, over10, maxASes := ds.ASCountShares()
	fmt.Printf("AS churn: %.1f%% single-AS, %.1f%% in >10 ASes, max %d ASes\n",
		single, over10, maxASes)

	// The same capacity census, but directly over decoded records of the
	// final day's merged netDb view, to show the low-level API.
	classCounts := map[netdb.BandwidthClass]int{}
	obs := network.NewObserver(sim.ObserverConfig{Floodfill: true, SharedKBps: sim.MaxSharedKBps, Seed: 42})
	for _, ri := range obs.CollectDay(44) {
		for _, cl := range ri.Caps.PublishedClasses() {
			classCounts[cl]++
		}
	}
	fmt.Printf("\nsingle floodfill observer, day 44 class counts: %v\n", classCounts)
}
