// Quickstart: build a 1/10-scale synthetic I2P network, regenerate two of
// the paper's artifacts (the population timeline and the blocking-rate
// figure), and print them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/i2pstudy/i2pstudy"
)

func main() {
	log.SetFlags(0)

	// DefaultOptions builds a 1/10-scale network (≈3,050 daily peers, 45
	// days). Counts scale linearly; every shape statistic matches the
	// paper. Use i2pstudy.FullScaleOptions() for the 30.5K-peer network.
	study, err := i2pstudy.NewStudy(i2pstudy.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built network at scale %.2f of the paper's\n\n", study.Scale())

	// The registry has one experiment per table/figure. List it:
	fmt.Println("available experiments:")
	for _, e := range i2pstudy.Experiments() {
		fmt.Printf("  %-22s %s\n", e.ID, e.Title)
	}
	fmt.Println()

	// Regenerate Figure 5 (daily population) and Figure 13 (blocking
	// rates under different blacklist windows).
	for _, id := range []string{"figure-05", "figure-13"} {
		res, err := study.RunExperiment(id)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("=== %s\n%s\n", res.Title, res.Text)
		fmt.Println("headline metrics:")
		for k, v := range res.Metrics {
			fmt.Printf("  %s = %.2f\n", k, v)
		}
		fmt.Println()
	}
}
