// Bridge strategy: the paper's future-work proposal (Sections 7.1 and 8) —
// distributing newly joined peers and firewalled peers as bridges for
// users behind an address-blocking censor — evaluated over a ten-day
// horizon, plus the manual-reseed escape hatch of Section 6.1.
//
// Run with:
//
//	go run ./examples/bridge-strategy
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/reseed"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

func main() {
	log.SetFlags(0)

	network, err := sim.New(sim.Config{Seed: 4, Days: 45, TargetDailyPeers: 3050})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Part 1: manual reseeding under a reseed blockade (Section 6.1) ==")
	day := 10
	rng := rand.New(rand.NewPCG(8, 8))
	var friendView []*netdb.RouterInfo
	for i, idx := range network.ActivePeers(day) {
		if i >= 150 {
			break
		}
		p := network.Peers[idx]
		if p.Status == sim.StatusKnownIP {
			friendView = append(friendView, network.RouterInfoFor(p, day, rng))
		}
	}
	dir, err := os.MkdirTemp("", "i2pseeds")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, reseed.SeedFileName)
	if err := reseed.WriteSeedFile(seedPath, friendView, "friendly-peer", network.DayTime(day)); err != nil {
		log.Fatal(err)
	}
	bundle, err := reseed.ReadSeedFile(seedPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friend exported %s with %d RouterInfos; blocked user bootstrapped from it\n\n",
		reseed.SeedFileName, len(bundle.Records))

	fmt.Println("== Part 2: bridge pools under a 6-router censor (Section 7.1) ==")
	cfg := censor.DefaultBridgeConfig()
	cfg.Day = 20
	cfg.HorizonDays = 10
	cfg.Bridges = 80
	evs, err := censor.EvaluateBridges(network, 5, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %8s %10s %10s   usable-by-day\n", "strategy", "pool", "initial", "final")
	for _, e := range evs {
		fmt.Printf("%-14s %8d %9.0f%% %9.0f%%   ", e.Strategy, e.PoolSize,
			100*e.InitialUsable(), 100*e.FinalUsable())
		for _, u := range e.UsableByDay {
			fmt.Printf("%3.0f ", 100*u)
		}
		fmt.Println()
	}

	fmt.Println("\nReading the table:")
	fmt.Println("- random known-IP bridges are mostly blacklisted before distribution;")
	fmt.Println("- newly joined peers start usable but decay as the censor discovers them;")
	fmt.Println("- firewalled peers expose no blockable address: only their introducer")
	fmt.Println("  path and their own churn limit them — the paper's 'potentially")
	fmt.Println("  sustainable' candidate when combined with fresh peers.")
}
