// netdb-service: the distributed directory of Section 2.1.2 running for
// real — three floodfill routers on loopback TCP, speaking the obfuscated
// transport, storing and flooding RouterInfos, answering lookups and
// exploratory queries, and serving a LeaseSet for an eepsite destination
// addressed by its .b32.i2p name.
//
// Run with:
//
//	go run ./examples/netdb-service
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"github.com/i2pstudy/i2pstudy/internal/floodfill"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
)

func main() {
	log.SetFlags(0)
	now := time.Now().UTC()

	// Three floodfill routers, fully meshed for flooding.
	ids := []uint64{101, 102, 103}
	servers := make(map[uint64]*floodfill.Server, len(ids))
	for _, id := range ids {
		srv := floodfill.NewServer(netdb.NewStore(true), floodfill.Config{
			Identity: netdb.HashFromUint64(id),
			Fanout:   netdb.FloodFanout,
		})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers[id] = srv
		fmt.Printf("floodfill %d listening on %s\n", id, srv.Addr())
	}
	for idA, a := range servers {
		for idB, b := range servers {
			if idA != idB {
				a.AddPeer(netdb.HashFromUint64(idB), b.Addr())
			}
		}
	}

	// A peer publishes its RouterInfo to one floodfill; flooding carries
	// it to the rest.
	client, err := floodfill.Dial(servers[101].Addr(), netdb.HashFromUint64(101))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	ri := &netdb.RouterInfo{
		Identity:  netdb.HashFromUint64(31337),
		Published: now,
		Caps:      netdb.NewCaps(300, false, true),
		Version:   "0.9.34",
		Addresses: []netdb.RouterAddress{{
			Transport: netdb.TransportNTCP,
			Addr:      netip.MustParseAddr("203.0.113.99"),
			Port:      14444,
		}},
	}
	if err := client.StoreRouterInfo(ri, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstored RouterInfo %s (caps %s) at floodfill 101, confirmed\n",
		ri.Identity.Short(), ri.Caps)

	// Wait for the flood, then look the record up at a different floodfill.
	time.Sleep(200 * time.Millisecond)
	other, err := floodfill.Dial(servers[103].Addr(), netdb.HashFromUint64(103))
	if err != nil {
		log.Fatal(err)
	}
	defer other.Close()
	got, referrals, err := other.LookupRouterInfo(ri.Identity, netdb.HashFromUint64(555))
	if err != nil {
		log.Fatal(err)
	}
	if got != nil {
		fmt.Printf("lookup at floodfill 103 (reached via flooding): found %s, %d address(es)\n",
			got.Identity.Short(), len(got.Addresses))
	} else {
		fmt.Printf("lookup missed; %d referrals\n", len(referrals))
	}

	// An eepsite destination publishes its LeaseSet; clients resolve the
	// .b32.i2p name to the destination hash and query.
	dest := netdb.HashFromUint64(99999)
	fmt.Printf("\neepsite address: %s\n", dest.B32())
	ls := &netdb.LeaseSet{
		Destination: dest,
		Published:   now,
		Leases: []netdb.Lease{{
			Gateway:  ri.Identity,
			TunnelID: 42,
			Expires:  now.Add(10 * time.Minute),
		}},
	}
	if err := client.StoreLeaseSet(ls, true); err != nil {
		log.Fatal(err)
	}
	parsed, err := netdb.ParseB32(dest.B32())
	if err != nil {
		log.Fatal(err)
	}
	gotLS, _, err := client.LookupLeaseSet(parsed, netdb.HashFromUint64(555))
	if err != nil {
		log.Fatal(err)
	}
	if gotLS != nil {
		fmt.Printf("resolved LeaseSet: gateway %s, tunnel %d, expires %s\n",
			gotLS.Leases[0].Gateway.Short(), gotLS.Leases[0].TunnelID,
			gotLS.Leases[0].Expires.Format(time.Kitchen))
	}

	// Exploratory lookup: how a peer short on RouterInfos harvests more
	// (the Section 4.2 mechanism the paper declined to abuse).
	peers, err := client.Explore(netdb.HashFromUint64(1), netdb.HashFromUint64(555), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexploratory lookup returned %d peer referral(s)\n", len(peers))
}
