// Blocking emulation: the paper's second research question — "How
// resilient is I2P against censorship?" — as a runnable scenario. A censor
// operates monitoring routers, compiles an address blacklist, and
// null-routes the victim's traffic; we measure the blocking rate against a
// stable client (Figure 13) and then what that rate does to eepsite
// browsing (Figure 14).
//
// Run with:
//
//	go run ./examples/blocking-emulation
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/i2pstudy/i2pstudy/internal/censor"
	"github.com/i2pstudy/i2pstudy/internal/eepsite"
	"github.com/i2pstudy/i2pstudy/internal/netdb"
	"github.com/i2pstudy/i2pstudy/internal/sim"
)

func main() {
	log.SetFlags(0)

	network, err := sim.New(sim.Config{Seed: 3, Days: 45, TargetDailyPeers: 3050})
	if err != nil {
		log.Fatal(err)
	}
	day := 40
	victim := censor.NewVictim(network, 1234)

	fmt.Println("== Part 1: blocking rates (Figure 13) ==")
	for _, window := range []int{1, 5, 30} {
		cz, err := censor.NewCensor(network, 20, window, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("blacklist window %2d days: ", window)
		for _, k := range []int{2, 6, 10, 20} {
			rate := censor.BlockingRate(cz, victim, k, day)
			fmt.Printf(" %2d routers=%5.1f%% ", k, 100*rate)
		}
		fmt.Println()
	}

	fmt.Println("\n== Part 2: usability under blocking (Figure 14) ==")
	// The victim's tunnel candidates come from its own netDb.
	rng := rand.New(rand.NewPCG(5, 5))
	var candidates []*netdb.RouterInfo
	for _, idx := range victim.KnownPeers(day) {
		candidates = append(candidates, network.RouterInfoFor(network.Peers[idx], day, rng))
	}
	site := eepsite.NewSite(netdb.HashFromUint64(808))

	// Tie the two parts together: derive the blocked-peer predicate from a
	// real censor blacklist rather than a synthetic rate.
	cz, err := censor.NewCensor(network, 20, 5, 99)
	if err != nil {
		log.Fatal(err)
	}
	blockedPeer := cz.BlockedPeerFunc(20, day)
	byHash := make(map[netdb.Hash]int)
	for _, idx := range victim.KnownPeers(day) {
		byHash[network.Peers[idx].ID] = idx
	}
	blocked := func(h netdb.Hash) bool {
		idx, ok := byHash[h]
		return ok && blockedPeer(idx)
	}

	client := eepsite.NewClient(candidates, nil)
	st, err := client.Crawl(site, 50, rand.New(rand.NewPCG(6, 6)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unblocked:        mean load %6.1fs, timeouts %5.1f%%\n",
		st.MeanLoad.Seconds(), st.TimeoutPct())

	client = eepsite.NewClient(candidates, blocked)
	st, err = client.Crawl(site, 50, rand.New(rand.NewPCG(7, 7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under the censor: mean load %6.1fs, timeouts %5.1f%% (HTTP 504)\n",
		st.MeanLoad.Seconds(), st.TimeoutPct())

	fmt.Println("\nConclusion (paper, Section 8): despite its decentralized design,")
	fmt.Println("I2P can be blocked cheaply — ten monitoring routers suffice for >95%.")
}
